(** §2.4, Listing 3 — Combination of objects and arrays: a string *object*
    placed into a character buffer.

    [checkUname] reuses the 8-byte global [uname_buf] for a 16-byte
    [CppString] object built from the user's input: the object's tail —
    including 4 attacker bytes of its internal buffer and the length field
    — lands on the [next_uid] global.

    The same module demonstrates the §2.5(4) alignment hazard: the object
    requires 4-byte alignment but is placed into a char array; under the
    strict-alignment machine the placement faults. *)

open Pna_minicpp.Dsl
open Pna_layout
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome

(* a fixed-capacity std::string stand-in *)
let cpp_string =
  Class_def.v "CppString" [ ("buf", char_arr 12); ("len", int) ]

let mk_program ~misaligned =
  let place_at =
    (* &uname_buf[1] is misaligned for an align-4 object *)
    if misaligned then v "uname_buf" +: i 1 else v "uname_buf"
  in
  program
    ~classes:[ cpp_string ]
    ~globals:[ global "uname_buf" (char_arr 8); global "next_uid" int ]
    [
      func "CppString::ctor"
        ~params:[ ("this", ptr (cls "CppString")); ("s", char_p) ]
        [
          expr (call "strncpy" [ arrow (v "this") "buf"; v "s"; i 12 ]);
          set (arrow (v "this") "len") (call "strlen" [ v "s" ]);
        ];
      func "checkUname"
        [
          (* Place a string object in the memory of uname_buf[] (paper) *)
          decli "str" (ptr (cls "CppString")) (pnew place_at (cls "CppString") [ cin_str ]);
        ];
      func "main" [ expr (call "checkUname" []); ret (i 0) ];
    ]

let check m (o : O.t) =
  let uid = D.global_u32 m "next_uid" in
  (* buf[8..11] of the placed object alias next_uid *)
  if O.exited_normally o && uid = 0x64697521 (* "!uid" LE *) && D.global_tainted m "next_uid" 4
  then C.success "next_uid global rewritten with username bytes 8..11 (0x%08x)" uid
  else C.failure "next_uid=0x%08x (status %a)" uid O.pp_status o.O.status

let attack =
  C.make ~id:"L03-strobj" ~listing:3 ~section:"2.4"
    ~name:"string object placed into a char buffer" ~segment:C.Data_bss
    ~goal:"the object's internal buffer and length spill over a neighbour"
    ~program:(mk_program ~misaligned:false)
    ~mk_input:(fun _m -> ([], [ "attacker!uid" ]))
    ~check ()

(* The §2.5 alignment hazard: silently tolerated on a lax machine,
   terminates the program on a strict one. *)
let misaligned =
  C.make ~id:"L03-misalign" ~listing:3 ~section:"2.5"
    ~name:"misaligned object placement" ~segment:C.Data_bss
    ~goal:"place an align-4 object at an odd address"
    ~program:(mk_program ~misaligned:true)
    ~mk_input:(fun _m -> ([], [ "attacker!uid" ]))
    ~check:(fun m (o : O.t) ->
      match o.O.status with
      | O.Exited _ ->
        if D.global_tainted m "next_uid" 4 then
          C.success "misaligned placement tolerated; neighbour corrupted anyway"
        else C.failure "no corruption"
      | st -> C.failure "terminated: %a" O.pp_status st)
    ()
