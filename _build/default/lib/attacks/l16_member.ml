(** §3.8.1, Listing 16 — Overwriting member variables of a stack object.

    Two Student locals: [first] (with real data) is declared before
    [stud], so it sits above it. Placing a GradStudent over [stud] makes
    ssn[0]/ssn[1] alias [first.gpa]'s eight bytes. The program copies
    first.gpa out to a global afterwards so the corruption is observable
    after the frame dies. *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome

let program_ =
  program ~classes:Schema.base_classes
    ~globals:[ global "isGradStudent" int; global "observed_gpa" double ]
    (Schema.base_funcs
    @ [
        func "addStudent"
          [
            obj "first" "Student" [ fl 3.9; i 2008; i 2 ];
            obj "stud" "Student" [];
            when_ (v "isGradStudent")
              [
                decli "gs"
                  (ptr (cls "GradStudent"))
                  (pnew (addr (v "stud")) (cls "GradStudent") []);
                set (idx (arrow (v "gs") "ssn") (i 0)) cin;
                set (idx (arrow (v "gs") "ssn") (i 1)) cin;
              ];
            set (v "observed_gpa") (fld (v "first") "gpa");
          ];
        func "main"
          [ set (v "isGradStudent") (i 1); expr (call "addStudent" []); ret (i 0) ];
      ])

let check m (o : O.t) =
  let lo = D.global_u32 m "observed_gpa" in
  let hi = D.global_u32 ~off:4 m "observed_gpa" in
  if
    O.exited_normally o && lo = Schema.junk0 && hi = Schema.junk1
    && D.global_tainted m "observed_gpa" 8
  then
    C.success "first.gpa bit pattern replaced with 0x%08x%08x (was 3.9)" hi lo
  else
    C.failure "first.gpa = %g (status %a)" (D.global_f64 m "observed_gpa")
      O.pp_status o.O.status

let attack =
  C.make ~id:"L16-member" ~listing:16 ~section:"3.8.1"
    ~name:"overwrite member of adjacent stack object" ~segment:C.Stack
    ~goal:"rewrite another object's field through the overflow"
    ~program:program_
    ~mk_input:(fun _m -> ([ Schema.junk0; Schema.junk1 ], []))
    ~check ()
