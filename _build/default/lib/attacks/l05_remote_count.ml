(** §3.2, Listing 5 — Object overflow via a remote/serialized object.

    A third-party service reports how many entries it returned; the
    program trusts the count and places that many records into a fixed
    64-byte memory pool with placement new, then populates them from the
    (tainted) payload. A count of 20 writes 80 bytes: the 4 records past
    the pool land on the adjacent [quota] global. *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome

let pool_ints = 16 (* 64-byte pool *)
let attacker_quota = 99999

let program_ =
  program
    ~globals:[ global "pool" (char_arr 64); global "quota" int ]
    [
      func "serve"
        [
          (* n: length of received names[]: maliciously changed (paper) *)
          decli "n" int cin;
          decli "ids" (ptr int) (pnew_arr (v "pool") int (v "n"));
          for_
            (decli "j" int (i 0))
            (v "j" <: v "n")
            (set (v "j") (v "j" +: i 1))
            [ set (idx (v "ids") (v "j")) cin ];
        ];
      func "main" [ expr (call "serve" []); ret (i 0) ];
    ]

let check m (o : O.t) =
  let quota = D.global_u32 m "quota" in
  if O.exited_normally o && quota = attacker_quota && D.global_tainted m "quota" 4
  then C.success "quota global forced to %d by record #%d" quota pool_ints
  else C.failure "quota=%d (status %a)" quota O.pp_status o.O.status

let attack =
  C.make ~id:"L05-remote" ~listing:5 ~section:"3.2"
    ~name:"overflow via remote object count" ~segment:C.Data_bss
    ~goal:"trusted remote length drives placement past the memory pool"
    ~program:program_
    ~mk_input:(fun _m ->
      let n = 20 in
      let payload =
        List.init n (fun j -> if j = pool_ints then attacker_quota else 1000 + j)
      in
      (n :: payload, []))
    ~check ()
