(** §3.7.2 + §4.4, Listing 15 — Overwriting a local variable on the stack.

    The loop bound [n] is declared before the [Student] local, so it sits
    above [stud] in the frame. Thanks to the Student's tail alignment,
    ssn[0] lands in padding and ssn[1] lands exactly on [n] — the paper's
    "Alignment Issues" paragraph. The program then runs a loop [n] times.

    Three catalogue entries share the program:
    - [attack]: force n = 40 (silent control-variable corruption)
    - [dos]:    force n huge — the request never completes (§4.4)
    - [skip]:   force n = 0 via an overflowing unsigned-looking negative,
                skipping the loop entirely ("never taken", auth-bypass
                flavour of §4.4) *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome

let program_ =
  program ~classes:Schema.base_classes
    ~globals:[ global "isGradStudent" int; global "counter" int ]
    (Schema.base_funcs
    @ [
        func "addStudent"
          [
            decli "n" int (i 5);
            obj "stud" "Student" [];
            when_ (v "isGradStudent")
              [
                decli "gs"
                  (ptr (cls "GradStudent"))
                  (pnew (addr (v "stud")) (cls "GradStudent") []);
                (* ssn[0] falls in the alignment padding; ssn[1] is n *)
                set (idx (arrow (v "gs") "ssn") (i 1)) cin;
              ];
            for_
              (decli "j" int (i 0))
              (v "j" <: v "n")
              (set (v "j") (v "j" +: i 1))
              [ set (v "counter") (v "counter" +: i 1) ];
          ];
        func "main"
          [ set (v "isGradStudent") (i 1); expr (call "addStudent" []); ret (i 0) ];
      ])

let forced_n = 40

let check_var m (o : O.t) =
  let count = D.global_u32 m "counter" in
  if O.exited_normally o && count = forced_n then
    C.success "loop ran %d times instead of 5 (n overwritten via ssn[1])" count
  else C.failure "counter=%d (status %a)" count O.pp_status o.O.status

let check_dos _m (o : O.t) =
  match o.O.status with
  | O.Timeout { steps } ->
    C.success "request never completed: interpreter budget (%d steps) exhausted" steps
  | st -> C.failure "expected timeout, got %a" O.pp_status st

let check_skip m (o : O.t) =
  let count = D.global_u32 m "counter" in
  if O.exited_normally o && count = 0 then
    C.success "loop never taken: counter=0 (work/validation skipped)"
  else C.failure "counter=%d (status %a)" count O.pp_status o.O.status

let attack =
  C.make ~id:"L15-var" ~listing:15 ~section:"3.7.2"
    ~name:"overwrite local loop bound" ~segment:C.Stack
    ~goal:"change a control variable in the running frame"
    ~program:program_
    ~mk_input:(fun _m -> ([ forced_n ], []))
    ~check:check_var ()

let dos =
  C.make ~id:"L15-dos" ~listing:15 ~section:"4.4" ~name:"DoS via loop bound"
    ~segment:C.Stack ~goal:"make the request loop effectively forever"
    ~program:program_
    ~mk_input:(fun _m -> ([ 0x3fffffff ], []))
    ~check:check_dos ()

let skip =
  C.make ~id:"L15-skip" ~listing:15 ~section:"4.4"
    ~name:"skip the loop entirely" ~segment:C.Stack
    ~goal:"make a validation/accounting loop never run"
    ~program:program_
    ~mk_input:(fun _m -> ([ -2147483648 ], []))
    ~check:check_skip ()
