(** §3.6, Listing 13 — Stack overflow: modification of the return address.

    [addStudent] keeps a local [Student] and places a [GradStudent] over
    it. With [stud] as the only local, the frame is exactly the paper's
    picture, and the SSN slots alias the control data:

    - no canary, frame pointer saved:  ssn[0] -> saved fp, ssn[1] -> ret
    - no canary, no frame pointer:     ssn[0] -> ret
    - canary + frame pointer:          ssn[0] -> canary, ssn[1] -> fp,
                                       ssn[2] -> ret

    (matching §3.6.1 verbatim). The input loop only stores positive
    values, which is what enables the §5.2 selective bypass: feed
    non-positive values for the slots you must not touch.

    Three catalogue entries share the program:
    - [attack] (naive smash, arc injection to system())
    - [bypass] (§3.6.1/§5.2: skip canary and fp, rewrite only ret)
    - [inject] (return into the attacker-filled object on the stack) *)

open Pna_minicpp.Dsl
module C = Catalog
module Config = Pna_defense.Config
module Machine = Pna_machine.Machine
module O = Pna_minicpp.Outcome

let mk_program ~checked =
  let place =
    decli "gs" (ptr (cls "GradStudent")) (pnew (addr (v "stud")) (cls "GradStudent") [])
    :: Schema.ssn_input_loop "gs"
  in
  let grad_branch =
    if checked then
      [
        if_
          (sizeof (cls "GradStudent") <=: sizeof (cls "Student"))
          place
          (decli "gs" (ptr (cls "GradStudent")) (new_ (cls "GradStudent") [])
           :: Schema.ssn_input_loop "gs"
          @ [ delete (v "gs") ]);
      ]
    else place
  in
  program ~classes:Schema.base_classes
    ~globals:[ global "isGradStudent" int; global "uname_buf" (char_arr 32) ]
    (Schema.base_funcs
    @ [
        func "addStudent" (obj "stud" "Student" [] :: [ when_ (v "isGradStudent") grad_branch ]);
        func "main"
          [
            (* the login banner records the username — and gives the
               attacker a writable, known-address scratch area (§3.6.2's
               "enough [room] to inject shell code") *)
            expr (call "strncpy" [ v "uname_buf"; cin_str; i 32 ]);
            set (v "isGradStudent") (i 1);
            expr (call "addStudent" []);
            ret (i 0);
          ];
      ])

(* Which ssn slot aliases the return address, per configuration (see the
   frame picture in {!Pna_machine.Frame}). *)
let ret_slot_index (cfg : Config.t) =
  match (cfg.stack_protector, cfg.save_frame_pointer) with
  | true, true -> 2
  | false, true -> 1
  | true, false -> 1
  | false, false -> 0

let positive_junk = [| Schema.junk0; Schema.junk1; Schema.junk2 |]

(* Naive smash: positive junk everywhere, the system() address in the slot
   that aliases ret. Tramples the canary when there is one. *)
let naive_input m =
  let cfg = Machine.config m in
  let target = Machine.function_addr m "system" in
  let k = ret_slot_index cfg in
  (List.init 3 (fun j -> if j = k then target else positive_junk.(j)), [])

(* Selective overwrite (§3.6.1): non-positive values skip every slot
   before ret, leaving canary and saved fp untouched. *)
let bypass_input m =
  let cfg = Machine.config m in
  let target = Machine.function_addr m "system" in
  let k = ret_slot_index cfg in
  (List.init 3 (fun j -> if j = k then target else -1), [])

(* The injected "shellcode" lives in the global username buffer: a
   writable bss address the attacker both knows and fills. (The listing's
   [dssn > 0] guard only accepts positive ints, which rules out 0xbfff...
   stack addresses but not bss ones.) *)
let shellcode = String.init 31 (fun k -> Char.chr (0x90 + (k land 1)))

let inject_input m =
  let cfg = Machine.config m in
  let target = Machine.global_addr_exn m "uname_buf" in
  let k = ret_slot_index cfg in
  (List.init 3 (fun j -> if j = k then target else -1), [ shellcode ])

let check_arc = C.expect_arc ~via:O.Return_address ~symbol:"system"

let check_inject m (o : O.t) =
  let expected = Machine.global_addr_exn m "uname_buf" in
  match o.O.status with
  | O.Code_injection { via = O.Return_address; target; tainted } when target = expected ->
    if tainted && Driver.tainted m target 16 then
      C.success "returned into attacker shellcode at 0x%08x in bss" target
    else C.failure "return target not attacker-tainted"
  | st -> C.failure "expected code injection at 0x%08x, got %a" expected O.pp_status st

let attack =
  C.make ~id:"L13-ret" ~listing:13 ~section:"3.6.1"
    ~name:"stack smash of return address" ~segment:C.Stack
    ~goal:"arc injection: return to system()"
    ~program:(mk_program ~checked:false)
    ~hardened:(mk_program ~checked:true)
    ~mk_input:naive_input ~check:check_arc ()

let bypass =
  C.make ~id:"L13-bypass" ~listing:13 ~section:"3.6.1/5.2"
    ~name:"selective overwrite leaving the canary intact" ~segment:C.Stack
    ~goal:"rewrite only the return address; StackGuard must not notice"
    ~program:(mk_program ~checked:false)
    ~mk_input:bypass_input ~check:check_arc ()

let inject =
  C.make ~id:"L13-inject" ~listing:13 ~section:"3.6.2"
    ~name:"return into injected code on the stack" ~segment:C.Stack
    ~goal:"code injection: return into the attacker-filled object"
    ~program:(mk_program ~checked:false)
    ~mk_input:inject_input ~check:check_inject ()
