lib/attacks/l17_funptr.ml: Catalog Pna_machine Pna_minicpp Schema
