lib/attacks/l10_internal.ml: Catalog Class_def Driver Pna_layout Pna_minicpp Schema
