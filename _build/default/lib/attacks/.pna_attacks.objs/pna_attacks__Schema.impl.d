lib/attacks/schema.ml: Class_def Pna_layout Pna_minicpp
