lib/attacks/l11_data_bss.ml: Catalog Driver Pna_minicpp Schema
