lib/attacks/catalog.mli: Format Pna_machine Pna_minicpp
