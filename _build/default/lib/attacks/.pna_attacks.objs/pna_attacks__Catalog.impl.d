lib/attacks/catalog.ml: Fmt Pna_machine Pna_minicpp
