lib/attacks/l20_array_bss.ml: Catalog Char Driver Pna_minicpp Schema String
