lib/attacks/driver.ml: Catalog Fmt List Option Pna_defense Pna_machine Pna_minicpp Pna_vmem String
