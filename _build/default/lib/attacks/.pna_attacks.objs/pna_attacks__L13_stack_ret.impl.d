lib/attacks/l13_stack_ret.ml: Array Catalog Char Driver List Pna_defense Pna_machine Pna_minicpp Schema String
