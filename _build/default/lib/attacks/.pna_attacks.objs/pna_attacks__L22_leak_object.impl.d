lib/attacks/l22_leak_object.ml: Catalog Char Driver Pna_minicpp Schema String
