lib/attacks/l21_leak_array.ml: Catalog Driver Pna_minicpp
