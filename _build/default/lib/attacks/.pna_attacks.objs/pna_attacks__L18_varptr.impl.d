lib/attacks/l18_varptr.ml: Catalog Driver Pna_machine Pna_minicpp Schema
