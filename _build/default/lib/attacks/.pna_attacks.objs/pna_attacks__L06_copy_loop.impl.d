lib/attacks/l06_copy_loop.ml: Catalog Class_def Driver List Pna_layout Pna_minicpp
