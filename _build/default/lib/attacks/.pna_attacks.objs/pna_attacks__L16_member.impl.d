lib/attacks/l16_member.ml: Catalog Driver Pna_minicpp Schema
