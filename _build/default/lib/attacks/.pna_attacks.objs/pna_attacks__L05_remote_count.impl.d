lib/attacks/l05_remote_count.ml: Catalog Driver List Pna_minicpp
