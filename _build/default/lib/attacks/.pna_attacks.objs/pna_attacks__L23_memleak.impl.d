lib/attacks/l23_memleak.ml: Catalog Driver Pna_machine Pna_minicpp Schema
