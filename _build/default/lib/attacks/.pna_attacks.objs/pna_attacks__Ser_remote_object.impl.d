lib/attacks/ser_remote_object.ml: Catalog Driver Pna_minicpp Pna_serial
