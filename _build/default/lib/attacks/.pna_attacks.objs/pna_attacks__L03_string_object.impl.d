lib/attacks/l03_string_object.ml: Catalog Class_def Driver Pna_layout Pna_minicpp
