lib/attacks/l07_copy_ctor.ml: Catalog Driver Pna_minicpp Schema
