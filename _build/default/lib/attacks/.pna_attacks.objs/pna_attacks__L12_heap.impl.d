lib/attacks/l12_heap.ml: Catalog Driver Pna_minicpp Schema
