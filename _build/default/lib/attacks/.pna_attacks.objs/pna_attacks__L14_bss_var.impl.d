lib/attacks/l14_bss_var.ml: Catalog Driver Pna_minicpp Schema
