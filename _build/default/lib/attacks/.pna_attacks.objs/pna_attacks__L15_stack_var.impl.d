lib/attacks/l15_stack_var.ml: Catalog Driver Pna_minicpp Schema
