lib/attacks/driver.mli: Catalog Format Pna_defense Pna_machine Pna_minicpp
