lib/attacks/l08_indirect.ml: Catalog Driver Pna_minicpp Schema
