lib/attacks/l19_array_stack.ml: Catalog Char List Pna_machine Pna_minicpp Schema String
