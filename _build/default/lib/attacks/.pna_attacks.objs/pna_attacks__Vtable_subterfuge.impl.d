lib/attacks/vtable_subterfuge.ml: Catalog Driver List Pna_machine Pna_minicpp Schema
