(** §4.2, Listing 20 — Two-step array overflow in bss.

    Same two-step pattern as Listing 19, but the pool is a global: after
    the object overflow corrupts [n_unames], the strncpy runs past the
    64-byte pool and rewrites the adjacent globals [n_staff] and
    [payroll_budget]. *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome

let forced_staff = 0x31313131 (* "1111" *)
let forced_budget = 0x39393939 (* "9999" *)

let program_ =
  program ~classes:Schema.base_classes
    ~globals:
      [
        global "mem_pool" (char_arr 64);
        global "n_staff" int;
        global "payroll_budget" int;
        global "n_students" ~init:(Ival 8) int;
        global "isGradStudent" int;
      ]
    (Schema.base_funcs
    @ [
        func "sortAndAddUname" ~params:[ ("uname", char_p) ]
          [
            decli "n_unames" int (i 0);
            obj "stud" "Student" [];
            set (v "n_unames") cin;
            when_ (v "n_unames" >: v "n_students") [ ret0 ];
            when_ (v "isGradStudent")
              [
                decli "gs"
                  (ptr (cls "GradStudent"))
                  (pnew (addr (v "stud")) (cls "GradStudent") []);
                set (idx (arrow (v "gs") "ssn") (i 0)) cin;
              ];
            decli "buf" char_p
              (pnew_arr (v "mem_pool") char (v "n_unames" *: i 8));
            expr (call "strncpy" [ v "buf"; v "uname"; v "n_unames" *: i 8 ]);
          ];
        func "main"
          [
            set (v "isGradStudent") (i 1);
            expr (call "sortAndAddUname" [ cin_str ]);
            ret (i 0);
          ];
      ])

let check m (o : O.t) =
  let staff = D.global_u32 m "n_staff" in
  let budget = D.global_u32 m "payroll_budget" in
  if
    O.exited_normally o && staff = forced_staff && budget = forced_budget
    && D.global_tainted m "n_staff" 8
  then C.success "bss globals rewritten: n_staff=0x%08x budget=0x%08x" staff budget
  else
    C.failure "n_staff=0x%08x budget=0x%08x (status %a)" staff budget O.pp_status
      o.O.status

let attack =
  C.make ~id:"L20-arrbss" ~listing:20 ~section:"4.2"
    ~name:"two-step array overflow in bss" ~segment:C.Data_bss
    ~goal:"overflow a global pool onto adjacent globals"
    ~program:program_
    ~mk_input:(fun _m ->
      (* 72 bytes: 64 filler + n_staff + payroll_budget *)
      let filler = String.make 64 'u' in
      let word w = String.init 4 (fun k -> Char.chr ((w lsr (8 * k)) land 0xff)) in
      ([ 5; 9 ], [ filler ^ word forced_staff ^ word forced_budget ]))
    ~check ()
