(** Source-level C++ class definitions.

    A class has an ordered list of base classes (single or multiple
    inheritance), an ordered list of member fields, and a method table.
    A method is identified by its source name; its implementation is a
    symbol resolved by the machine's text table at load time (for virtual
    methods the symbol ends up in the vtable, which is exactly the data an
    attacker corrupts in the paper's "virtual table pointer subterfuge"). *)

type meth = {
  m_name : string;
  m_virtual : bool;
  m_impl : string;  (** text-table symbol of the implementation *)
}

type t = {
  c_name : string;
  c_bases : string list;
  c_fields : (string * Ctype.t) list;
  c_methods : meth list;
}

let v ?(bases = []) ?(methods = []) name fields =
  { c_name = name; c_bases = bases; c_fields = fields; c_methods = methods }

let virtual_method ?impl name =
  let impl = Option.value impl ~default:name in
  { m_name = name; m_virtual = true; m_impl = impl }

let plain_method ?impl name =
  let impl = Option.value impl ~default:name in
  { m_name = name; m_virtual = false; m_impl = impl }

let find_method t name = List.find_opt (fun m -> m.m_name = name) t.c_methods

let has_own_virtual t = List.exists (fun m -> m.m_virtual) t.c_methods

let pp ppf t =
  Fmt.pf ppf "@[<v2>class %s%a {@,%a%a@]@,}" t.c_name
    (fun ppf -> function
      | [] -> ()
      | bs -> Fmt.pf ppf " : %a" (Fmt.list ~sep:Fmt.comma Fmt.string) bs)
    t.c_bases
    (Fmt.list ~sep:Fmt.cut (fun ppf (n, ty) -> Fmt.pf ppf "%a %s;" Ctype.pp ty n))
    t.c_fields
    (Fmt.list ~sep:Fmt.cut (fun ppf m ->
         Fmt.pf ppf "%s%s() -> %s;"
           (if m.m_virtual then "virtual " else "")
           m.m_name m.m_impl))
    t.c_methods
