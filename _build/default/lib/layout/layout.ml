(** Object layout computation (Itanium-flavoured, ILP32).

    Rules implemented:
    - a polymorphic class with no polymorphic primary base gets a vtable
      pointer as its first (hidden) member at offset 0;
    - base-class subobjects are laid out first, in declaration order, each
      aligned to its own alignment; the first base is the primary base and
      shares its vtable pointer with the derived class;
    - member fields follow in declaration order, each aligned naturally;
    - the class size is rounded up to the class alignment (tail padding);
      an empty class occupies one byte.

    Tail padding is load-bearing for the paper: §3.7.2 ("Alignment Issues")
    relies on a derived-class field landing inside what was only padding of
    the base-class instance. *)

type field = { f_name : string; f_offset : int; f_type : Ctype.t }

type t = {
  l_class : string;
  l_size : int;
  l_align : int;
  l_vptrs : int list;  (** offsets of vtable pointers, ascending *)
  l_fields : field list;  (** flattened, in offset order, inherited first *)
  l_vtable : (string * string) list;  (** slot order: (method, impl symbol) *)
  l_bases : (string * int) list;  (** base class -> subobject offset *)
}

type env = {
  classes : (string, Class_def.t) Hashtbl.t;
  layouts : (string, t) Hashtbl.t;
}

let create_env () = { classes = Hashtbl.create 16; layouts = Hashtbl.create 16 }

let define env (c : Class_def.t) =
  if Hashtbl.mem env.classes c.Class_def.c_name then
    Fmt.invalid_arg "Layout.define: duplicate class %s" c.Class_def.c_name;
  Hashtbl.replace env.classes c.Class_def.c_name c

let find_class env name =
  match Hashtbl.find_opt env.classes name with
  | Some c -> c
  | None -> Fmt.invalid_arg "Layout: unknown class %s" name

let round_up x a = (x + a - 1) / a * a

let rec polymorphic env name =
  let c = find_class env name in
  Class_def.has_own_virtual c || List.exists (polymorphic env) c.Class_def.c_bases

(* The vtable of a class: start from the primary-base slots (overriding
   impls where the derived class redefines a virtual), then append slots for
   virtuals introduced by this class. Non-primary-base slots are folded into
   the same table; the simulation does not model thunks, which none of the
   paper's attacks require. *)
let rec vtable_slots env name =
  let c = find_class env name in
  let inherited =
    List.concat_map (fun b -> vtable_slots env b) c.Class_def.c_bases
  in
  let deduped =
    List.fold_left
      (fun acc (m, impl) -> if List.mem_assoc m acc then acc else acc @ [ (m, impl) ])
      [] inherited
  in
  let overridden =
    List.map
      (fun (m, impl) ->
        match Class_def.find_method c m with
        | Some meth when meth.Class_def.m_virtual -> (m, meth.Class_def.m_impl)
        | Some _ | None -> (m, impl))
      deduped
  in
  let fresh =
    List.filter_map
      (fun (meth : Class_def.meth) ->
        if meth.m_virtual && not (List.mem_assoc meth.m_name overridden) then
          Some (meth.m_name, meth.m_impl)
        else None)
      c.Class_def.c_methods
  in
  overridden @ fresh

let rec of_class env name =
  match Hashtbl.find_opt env.layouts name with
  | Some l -> l
  | None ->
    let l = compute env name in
    Hashtbl.replace env.layouts name l;
    l

and sizeof env = function
  | Ctype.Class n -> (of_class env n).l_size
  | Ctype.Array (t, n) -> n * sizeof env t
  | t -> Ctype.scalar_size t

and alignof env = function
  | Ctype.Class n -> (of_class env n).l_align
  | Ctype.Array (t, _) -> alignof env t
  | t -> Ctype.scalar_size t

and compute env name =
  let c = find_class env name in
  let cur = ref 0 and align = ref 1 in
  let vptrs = ref [] and fields = ref [] and bases = ref [] in
  let place_base ~primary b =
    let bl = of_class env b in
    let off = round_up !cur bl.l_align in
    (* the primary base sits at offset 0 and donates its vptr *)
    assert ((not primary) || off = 0);
    bases := (b, off) :: !bases;
    vptrs := !vptrs @ List.map (fun v -> off + v) bl.l_vptrs;
    fields :=
      !fields
      @ List.map (fun f -> { f with f_offset = off + f.f_offset }) bl.l_fields;
    cur := off + bl.l_size;
    align := max !align bl.l_align
  in
  (match c.Class_def.c_bases with
  | [] ->
    if polymorphic env name then begin
      vptrs := [ 0 ];
      cur := Ctype.scalar_size Ctype.Fun_ptr;
      align := max !align 4
    end
  | b0 :: rest ->
    place_base ~primary:true b0;
    List.iter (place_base ~primary:false) rest;
    (* a polymorphic class whose primary base is not polymorphic needs its
       own vptr, allocated like a hidden leading member after the bases *)
    if polymorphic env name && !vptrs = [] then begin
      let off = round_up !cur 4 in
      vptrs := [ off ];
      cur := off + 4;
      align := max !align 4
    end);
  List.iter
    (fun (fn, ty) ->
      let a = alignof env ty in
      let off = round_up !cur a in
      fields := !fields @ [ { f_name = fn; f_offset = off; f_type = ty } ];
      cur := off + sizeof env ty;
      align := max !align a)
    c.Class_def.c_fields;
  let size = max 1 (round_up !cur !align) in
  {
    l_class = name;
    l_size = size;
    l_align = !align;
    l_vptrs = List.sort_uniq compare !vptrs;
    l_fields = !fields;
    l_vtable = vtable_slots env name;
    l_bases = List.rev !bases;
  }

(* Field lookup with C++ shadowing: the derived class' own fields are last
   in [l_fields], so searching from the back finds the most-derived
   declaration first. *)
let find_field l name =
  let rec from_back = function
    | [] -> None
    | f :: rest -> (
      match from_back rest with
      | Some _ as r -> r
      | None -> if f.f_name = name then Some f else None)
  in
  from_back l.l_fields

let field_exn l name =
  match find_field l name with
  | Some f -> f
  | None -> Fmt.invalid_arg "Layout: class %s has no field %s" l.l_class name

let base_offset l b =
  match List.assoc_opt b l.l_bases with
  | Some off -> Some off
  | None -> if b = l.l_class then Some 0 else None

(* End of the occupied part of the object: the byte just past the last
   field (or past the vptr for a field-less polymorphic class). *)
let fields_end env l =
  List.fold_left
    (fun acc f -> max acc (f.f_offset + sizeof env f.f_type))
    (match l.l_vptrs with [] -> 0 | vs -> 4 + List.fold_left max 0 vs)
    l.l_fields

(* Tail padding of the class: bytes between the end of the last field and
   the rounded size. These are the "harmless-looking" bytes §3.7's
   alignment discussion shows to be attacker-reachable. *)
let tail_padding env l = l.l_size - fields_end env l

let pp ppf l =
  Fmt.pf ppf "@[<v2>layout %s (size=%d align=%d)@,vptrs: %a@,%a@]" l.l_class
    l.l_size l.l_align
    (Fmt.list ~sep:Fmt.comma Fmt.int)
    l.l_vptrs
    (Fmt.list ~sep:Fmt.cut (fun ppf f ->
         Fmt.pf ppf "+%-3d %a %s" f.f_offset Ctype.pp f.f_type f.f_name))
    l.l_fields
