(** Object layout computation (Itanium-flavoured, ILP32): vtable-pointer
    placement, base subobjects, natural field alignment, tail padding.

    Layouts are memoized in an {!env}; define all classes before asking for
    layouts. *)

type field = { f_name : string; f_offset : int; f_type : Ctype.t }

type t = {
  l_class : string;
  l_size : int;
  l_align : int;
  l_vptrs : int list;  (** offsets of vtable pointers, ascending *)
  l_fields : field list;  (** flattened, in offset order, inherited first *)
  l_vtable : (string * string) list;  (** slot order: (method, impl symbol) *)
  l_bases : (string * int) list;  (** base class -> subobject offset *)
}

type env = {
  classes : (string, Class_def.t) Hashtbl.t;
  layouts : (string, t) Hashtbl.t;
}

val create_env : unit -> env

val define : env -> Class_def.t -> unit
(** @raise Invalid_argument on duplicate class names. *)

val find_class : env -> string -> Class_def.t
(** @raise Invalid_argument when undefined. *)

val polymorphic : env -> string -> bool
(** Does the class (transitively) declare a virtual method? *)

val of_class : env -> string -> t
val sizeof : env -> Ctype.t -> int
val alignof : env -> Ctype.t -> int

val find_field : t -> string -> field option
(** C++ shadowing: the most-derived declaration wins. *)

val field_exn : t -> string -> field
val base_offset : t -> string -> int option

val fields_end : env -> t -> int
(** One past the last occupied byte (fields or vptr). *)

val tail_padding : env -> t -> int
(** [l_size - fields_end]: the §3.7.2 attacker-reachable padding bytes. *)

val vtable_slots : env -> string -> (string * string) list
val pp : Format.formatter -> t -> unit
