(** Source-level C++ class definitions: ordered bases, ordered fields, and
    a method table whose implementations are text-table symbols. *)

type meth = {
  m_name : string;
  m_virtual : bool;
  m_impl : string;  (** text-table symbol of the implementation *)
}

type t = {
  c_name : string;
  c_bases : string list;
  c_fields : (string * Ctype.t) list;
  c_methods : meth list;
}

val v :
  ?bases:string list ->
  ?methods:meth list ->
  string ->
  (string * Ctype.t) list ->
  t

val virtual_method : ?impl:string -> string -> meth
(** [impl] defaults to the method name. *)

val plain_method : ?impl:string -> string -> meth
val find_method : t -> string -> meth option
val has_own_virtual : t -> bool
val pp : Format.formatter -> t -> unit
