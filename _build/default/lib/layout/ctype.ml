(** The C/C++ type algebra of the simulated machine.

    The model is ILP32: [int], [long] and all pointers are 4 bytes,
    [double] is 8 bytes with natural (8-byte) alignment. This matches the
    paper's assumption that "the size of each of the addresses (frame
    pointer) and the canary is same as the size of an int (4 bytes in
    Ubuntu Linux)". Class sizes depend on the class environment and live in
    {!Layout}. *)

type t =
  | Void
  | Char
  | Uchar
  | Bool
  | Short
  | Ushort
  | Int
  | Uint
  | Float
  | Double
  | Ptr of t
  | Fun_ptr
  | Class of string
  | Array of t * int

let rec pp ppf = function
  | Void -> Fmt.string ppf "void"
  | Char -> Fmt.string ppf "char"
  | Uchar -> Fmt.string ppf "unsigned char"
  | Bool -> Fmt.string ppf "bool"
  | Short -> Fmt.string ppf "short"
  | Ushort -> Fmt.string ppf "unsigned short"
  | Int -> Fmt.string ppf "int"
  | Uint -> Fmt.string ppf "unsigned int"
  | Float -> Fmt.string ppf "float"
  | Double -> Fmt.string ppf "double"
  | Ptr t -> Fmt.pf ppf "%a*" pp t
  | Fun_ptr -> Fmt.string ppf "void(*)()"
  | Class n -> Fmt.string ppf n
  | Array (t, n) -> Fmt.pf ppf "%a[%d]" pp t n

let to_string t = Fmt.str "%a" pp t

(* Size and alignment of non-class types; class types are resolved by
   {!Layout.sizeof} which closes the recursion through the environment. *)

let scalar_size = function
  | Void -> 0
  | Char | Uchar | Bool -> 1
  | Short | Ushort -> 2
  | Int | Uint | Float -> 4
  | Ptr _ | Fun_ptr -> 4
  | Double -> 8
  | Class _ | Array _ -> invalid_arg "Ctype.scalar_size: aggregate type"

let is_scalar = function Class _ | Array _ -> false | _ -> true

let is_integer = function
  | Char | Uchar | Bool | Short | Ushort | Int | Uint -> true
  | _ -> false

let is_signed = function
  | Char | Short | Int -> true
  | _ -> false

let is_float = function Float | Double -> true | _ -> false

let rec strip_arrays = function Array (t, _) -> strip_arrays t | t -> t

let element = function
  | Array (t, _) -> t
  | Ptr t -> t
  | t -> Fmt.invalid_arg "Ctype.element: %a has no element type" pp t

let equal (a : t) (b : t) = a = b
