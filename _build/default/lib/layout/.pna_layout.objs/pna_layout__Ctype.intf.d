lib/layout/ctype.mli: Format
