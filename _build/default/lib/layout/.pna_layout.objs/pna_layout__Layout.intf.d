lib/layout/layout.mli: Class_def Ctype Format Hashtbl
