lib/layout/class_def.mli: Ctype Format
