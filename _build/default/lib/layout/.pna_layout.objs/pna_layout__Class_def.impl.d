lib/layout/class_def.ml: Ctype Fmt List Option
