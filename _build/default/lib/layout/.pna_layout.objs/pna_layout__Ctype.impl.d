lib/layout/ctype.ml: Fmt
