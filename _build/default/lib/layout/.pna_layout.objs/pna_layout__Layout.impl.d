lib/layout/layout.ml: Class_def Ctype Fmt Hashtbl List
