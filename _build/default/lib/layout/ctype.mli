(** The C/C++ type algebra of the simulated machine (ILP32: int/long and
    pointers are 4 bytes, double is 8 with natural alignment). *)

type t =
  | Void
  | Char
  | Uchar
  | Bool
  | Short
  | Ushort
  | Int
  | Uint
  | Float
  | Double
  | Ptr of t
  | Fun_ptr
  | Class of string
  | Array of t * int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val scalar_size : t -> int
(** Size of a non-class type. @raise Invalid_argument on aggregates; use
    {!Layout.sizeof} for those. *)

val is_scalar : t -> bool
val is_integer : t -> bool
val is_signed : t -> bool
val is_float : t -> bool

val strip_arrays : t -> t
(** The ultimate element type of possibly-nested arrays. *)

val element : t -> t
(** Element type of an array or pointee of a pointer.
    @raise Invalid_argument otherwise. *)

val equal : t -> t -> bool
