lib/minicpp/lexer.ml: Buffer Char Fmt List Option String
