lib/minicpp/outcome.ml: Fmt Pna_machine
