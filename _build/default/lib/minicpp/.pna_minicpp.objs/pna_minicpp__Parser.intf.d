lib/minicpp/parser.mli: Ast
