lib/minicpp/ast.ml: List Pna_layout
