lib/minicpp/value.mli: Ctype Format Pna_layout
