lib/minicpp/interp.ml: Ast Char Class_def Ctype Fmt Int32 Layout List Option Outcome Pna_defense Pna_layout Pna_machine Pna_vmem String Value
