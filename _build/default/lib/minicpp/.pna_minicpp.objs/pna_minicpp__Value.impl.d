lib/minicpp/value.ml: Char Ctype Fmt Pna_layout Pna_vmem
