lib/minicpp/parser.ml: Array Ast Class_def Ctype Fmt Hashtbl Lexer List Option Pna_layout
