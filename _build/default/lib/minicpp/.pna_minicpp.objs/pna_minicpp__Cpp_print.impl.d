lib/minicpp/cpp_print.ml: Ast Buffer Char Class_def Ctype Float Fmt Format List Pna_layout String
