lib/minicpp/dsl.ml: Ast Ctype Pna_layout
