lib/minicpp/outcome.mli: Format Pna_machine
