lib/minicpp/cpp_print.mli: Ast Format Pna_layout
