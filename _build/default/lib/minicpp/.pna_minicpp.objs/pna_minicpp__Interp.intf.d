lib/minicpp/interp.mli: Ast Outcome Pna_defense Pna_layout Pna_machine
