(** Recursive-descent parser for the MiniC++ concrete syntax — the inverse
    of {!Cpp_print}.

    Dialect: [cin >> lv;] reads an attacker int; [cin_int()]/[cin_str()]
    are the expression forms; [delete[T] p;] is the §4.5 placed delete;
    constructors are written [C::C] with an explicit [this] parameter on
    out-of-line member definitions. *)

exception Error of { line : int; message : string }

val program : string -> Ast.program
(** Parse a full translation unit. Duplicate class/global/function
    definitions are rejected.
    @raise Error on syntax or validation problems.
    @raise Lexer.Error on lexical problems. *)

val expression : ?classes:string list -> string -> Ast.expr
(** Parse a single expression; [classes] names the class types the
    expression may mention (for casts and [new]). *)
