(** Pretty-printer: MiniC++ AST -> C++ source.

    The output is the dialect {!Parser} reads back (assert-level round-trip
    in the test suite) and is close enough to the paper's listings to diff
    against them by eye. Dialect notes:

    - [cin >> lvalue;] reads one attacker int; [lvalue = cin_str();] reads
      an attacker string;
    - [delete[T] p;] is the placed-delete of §4.5 (plain C++ has no
      placement delete — the bracketed type records what the programmer
      believed they were freeing);
    - methods appear as declarations inside the class and as out-of-line
      definitions ([T C::m(...) { ... }]); constructors follow C++ syntax. *)

open Pna_layout

(* ------------------------------------------------------------------ *)
(* types and declarators                                               *)

let rec base_type_name = function
  | Ctype.Void -> "void"
  | Ctype.Char -> "char"
  | Ctype.Uchar -> "unsigned char"
  | Ctype.Bool -> "bool"
  | Ctype.Short -> "short"
  | Ctype.Ushort -> "unsigned short"
  | Ctype.Int -> "int"
  | Ctype.Uint -> "unsigned int"
  | Ctype.Float -> "float"
  | Ctype.Double -> "double"
  | Ctype.Class n -> n
  | Ctype.Fun_ptr -> "void"
  | Ctype.Ptr t -> base_type_name t
  | Ctype.Array (t, _) -> base_type_name t

(* declarator: stars before the name, array extents after *)
let rec stars = function Ctype.Ptr t -> stars t ^ "*" | _ -> ""

let rec extents = function
  | Ctype.Array (t, n) -> Fmt.str "[%d]%s" n (extents t)
  | _ -> ""

let pp_decl ppf (name, ty) =
  match ty with
  | Ctype.Fun_ptr -> Fmt.pf ppf "void (*%s)()" name
  | _ ->
    Fmt.pf ppf "%s %s%s%s" (base_type_name ty) (stars ty) name (extents ty)

let pp_type ppf ty =
  match ty with
  | Ctype.Fun_ptr -> Fmt.string ppf "void (*)()"
  | _ -> Fmt.pf ppf "%s%s%s" (base_type_name ty) (stars ty) (extents ty)

(* ------------------------------------------------------------------ *)
(* expressions, precedence-aware                                       *)

let binop_info = function
  | Ast.Mul -> ("*", 5)
  | Ast.Div -> ("/", 5)
  | Ast.Mod -> ("%", 5)
  | Ast.Add -> ("+", 6)
  | Ast.Sub -> ("-", 6)
  | Ast.Shl -> ("<<", 7)
  | Ast.Shr -> (">>", 7)
  | Ast.Lt -> ("<", 8)
  | Ast.Le -> ("<=", 8)
  | Ast.Gt -> (">", 8)
  | Ast.Ge -> (">=", 8)
  | Ast.Eq -> ("==", 9)
  | Ast.Ne -> ("!=", 9)
  | Ast.Band -> ("&", 10)
  | Ast.Bor -> ("|", 12)
  | Ast.And -> ("&&", 13)
  | Ast.Or -> ("||", 14)

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 || Char.code c > 126 ->
        Buffer.add_string b (Fmt.str "\\x%02x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* constructors are stored as "C::ctor"; show C++ names *)
let cpp_func_name name =
  match String.index_opt name ':' with
  | Some i
    when i + 1 < String.length name
         && name.[i + 1] = ':'
         && String.sub name (i + 2) (String.length name - i - 2) = "ctor" ->
    let c = String.sub name 0 i in
    c ^ "::" ^ c
  | _ -> name

(* [prec] of the context: parenthesize when our operator binds looser *)
let rec pp_expr ?(prec = 99) ppf (e : Ast.expr) =
  let p = pp_expr in
  match e with
  | Ast.Int n -> Fmt.int ppf n
  | Ast.Flt f ->
    if Float.is_integer f then Fmt.pf ppf "%.1f" f else Fmt.pf ppf "%g" f
  | Ast.Str s -> Fmt.pf ppf "\"%s\"" (escape_string s)
  | Ast.Nullptr -> Fmt.string ppf "NULL"
  | Ast.Cin -> Fmt.string ppf "cin_int()"
  | Ast.Cin_str -> Fmt.string ppf "cin_str()"
  | Ast.Var x -> Fmt.string ppf x
  | Ast.Field (b, f) -> Fmt.pf ppf "%a.%s" (p ~prec:2) b f
  | Ast.Arrow (b, f) -> Fmt.pf ppf "%a->%s" (p ~prec:2) b f
  | Ast.Index (b, ix) -> Fmt.pf ppf "%a[%a]" (p ~prec:2) b (p ~prec:99) ix
  | Ast.Deref e -> wrap ppf ~prec ~mine:3 "*%a" (p ~prec:3) e
  | Ast.Addr e -> wrap ppf ~prec ~mine:3 "&%a" (p ~prec:3) e
  | Ast.Fun_addr f -> Fmt.pf ppf "&%s" f
  | Ast.Un (Ast.Neg, e) -> wrap ppf ~prec ~mine:3 "-%a" (p ~prec:3) e
  | Ast.Un (Ast.Not, e) -> wrap ppf ~prec ~mine:3 "!%a" (p ~prec:3) e
  | Ast.Un (Ast.Preinc, e) -> wrap ppf ~prec ~mine:3 "++%a" (p ~prec:3) e
  | Ast.Un (Ast.Predec, e) -> wrap ppf ~prec ~mine:3 "--%a" (p ~prec:3) e
  | Ast.Bin (op, a, b) ->
    let sym, mine = binop_info op in
    if mine > prec then
      Fmt.pf ppf "(%a %s %a)" (p ~prec:mine) a sym (p ~prec:(mine - 1)) b
    else Fmt.pf ppf "%a %s %a" (p ~prec:mine) a sym (p ~prec:(mine - 1)) b
  | Ast.Call (f, args) -> Fmt.pf ppf "%s(%a)" (cpp_func_name f) pp_args args
  | Ast.Mcall (o, m, args) ->
    Fmt.pf ppf "%a%s%s(%a)" (p ~prec:2) o
      (match o with Ast.Var _ when is_object o -> "." | _ -> "->")
      m pp_args args
  | Ast.Fpcall (f, args) -> Fmt.pf ppf "(*%a)(%a)" (p ~prec:3) f pp_args args
  | Ast.New (ty, args) -> Fmt.pf ppf "new %a(%a)" pp_type ty pp_args args
  | Ast.New_arr (ty, n) -> Fmt.pf ppf "new %a[%a]" pp_type ty (p ~prec:99) n
  | Ast.Pnew (place, ty, args) ->
    Fmt.pf ppf "new (%a) %a(%a)" (p ~prec:99) place pp_type ty pp_args args
  | Ast.Pnew_arr (place, ty, n) ->
    Fmt.pf ppf "new (%a) %a[%a]" (p ~prec:99) place pp_type ty (p ~prec:99) n
  | Ast.Sizeof ty -> Fmt.pf ppf "sizeof(%a)" pp_type ty
  | Ast.Cast (ty, e) -> wrap ppf ~prec ~mine:3 "(%a)%a" pp_type ty (p ~prec:3) e

and wrap : 'a. _ -> prec:int -> mine:int -> ('a, Format.formatter, unit) format -> 'a
    =
 fun ppf ~prec ~mine fmt ->
  if mine > prec then (
    Format.pp_print_string ppf "(";
    Fmt.kpf (fun ppf -> Format.pp_print_string ppf ")") ppf fmt)
  else Fmt.pf ppf fmt

and pp_args ppf args = Fmt.(list ~sep:(any ", ") (pp_expr ~prec:16)) ppf args

(* crude heuristic only used to render o.m() vs o->m(): method calls on a
   bare variable bound as an object use "." in our listings *)
and is_object = function Ast.Var _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* statements                                                          *)

let rec pp_stmt ind ppf (s : Ast.stmt) =
  let pad = String.make (2 * ind) ' ' in
  let e99 = pp_expr ~prec:99 in
  match s with
  | Ast.Decl (x, ty, None) -> Fmt.pf ppf "%s%a;" pad pp_decl (x, ty)
  | Ast.Decl (x, ty, Some Ast.Cin) ->
    (* C++ has no "declare and stream-read" form: two statements *)
    Fmt.pf ppf "%s%a;@,%scin >> %s;" pad pp_decl (x, ty) pad x
  | Ast.Decl (x, ty, Some e) ->
    Fmt.pf ppf "%s%a = %a;" pad pp_decl (x, ty) e99 e
  | Ast.Decl_obj (x, cname, []) -> Fmt.pf ppf "%s%s %s;" pad cname x
  | Ast.Decl_obj (x, cname, args) ->
    Fmt.pf ppf "%s%s %s = %s(%a);" pad cname x cname pp_args args
  | Ast.Assign (lv, Ast.Cin) -> Fmt.pf ppf "%scin >> %a;" pad e99 lv
  | Ast.Assign (lv, e) -> Fmt.pf ppf "%s%a = %a;" pad e99 lv e99 e
  | Ast.Expr e -> Fmt.pf ppf "%s%a;" pad e99 e
  | Ast.If (c, t, []) ->
    Fmt.pf ppf "%sif (%a) {@,%a%s}" pad e99 c (pp_block (ind + 1)) t pad
  | Ast.If (c, t, f) ->
    Fmt.pf ppf "%sif (%a) {@,%a%s} else {@,%a%s}" pad e99 c
      (pp_block (ind + 1))
      t pad
      (pp_block (ind + 1))
      f pad
  | Ast.While (c, body) ->
    Fmt.pf ppf "%swhile (%a) {@,%a%s}" pad e99 c (pp_block (ind + 1)) body pad
  | Ast.For (init, c, step, body) ->
    Fmt.pf ppf "%sfor (%a %a; %a) {@,%a%s}" pad (pp_for_init 0) init e99 c
      (pp_for_step ind) step
      (pp_block (ind + 1))
      body pad
  | Ast.Return None -> Fmt.pf ppf "%sreturn;" pad
  | Ast.Return (Some e) -> Fmt.pf ppf "%sreturn %a;" pad e99 e
  | Ast.Delete e -> Fmt.pf ppf "%sdelete %a;" pad e99 e
  | Ast.Delete_placed (e, ty) ->
    Fmt.pf ppf "%sdelete[%a] %a;" pad pp_type ty e99 e
  | Ast.Cout items ->
    Fmt.pf ppf "%scout%a;" pad
      Fmt.(list ~sep:nop (fun ppf it -> pf ppf " << %a" e99 it))
      items

and pp_for_init _ind ppf = function
  | Some (Ast.Decl (x, ty, Some e)) ->
    Fmt.pf ppf "%a = %a;" pp_decl (x, ty) (pp_expr ~prec:99) e
  | Some s -> (
    (* strip the indentation a nested statement would print *)
    match Fmt.str "%a" (pp_stmt 0) s with
    | str -> Fmt.string ppf str)
  | None -> Fmt.string ppf ";"

and pp_for_step _ind ppf = function
  | Some s ->
    let str = Fmt.str "%a" (pp_stmt 0) s in
    (* drop the trailing ';' of the rendered statement *)
    let str =
      if String.length str > 0 && str.[String.length str - 1] = ';' then
        String.sub str 0 (String.length str - 1)
      else str
    in
    Fmt.string ppf str
  | None -> ()

and pp_block ind ppf body =
  List.iter (fun s -> Fmt.pf ppf "%a@," (pp_stmt ind) s) body

(* ------------------------------------------------------------------ *)
(* top level                                                           *)

let pp_class env ppf (c : Class_def.t) =
  ignore env;
  Fmt.pf ppf "@[<v>class %s%s {@,public:" c.Class_def.c_name
    (match c.Class_def.c_bases with
    | [] -> ""
    | bs -> " : " ^ String.concat ", " (List.map (fun b -> "public " ^ b) bs));
  List.iter
    (fun (m : Class_def.meth) ->
      Fmt.pf ppf "@,  %sint %s();"
        (if m.Class_def.m_virtual then "virtual " else "")
        m.Class_def.m_name)
    c.Class_def.c_methods;
  List.iter
    (fun (fname, ty) -> Fmt.pf ppf "@,  %a;" pp_decl (fname, ty))
    c.Class_def.c_fields;
  Fmt.pf ppf "@,};@]"

let pp_global ppf (g : Ast.global) =
  match g.Ast.g_init with
  | Ast.Zero -> Fmt.pf ppf "%a;" pp_decl (g.Ast.g_name, g.Ast.g_type)
  | Ast.Ival n -> Fmt.pf ppf "%a = %d;" pp_decl (g.Ast.g_name, g.Ast.g_type) n
  | Ast.Fval f -> Fmt.pf ppf "%a = %g;" pp_decl (g.Ast.g_name, g.Ast.g_type) f
  | Ast.Sval s ->
    Fmt.pf ppf "%a = \"%s\";" pp_decl (g.Ast.g_name, g.Ast.g_type)
      (escape_string s)

let pp_func ppf (fn : Ast.func) =
  Fmt.pf ppf "@[<v>%a %s(%a) {@,%a}@]"
    (fun ppf ty -> pp_type ppf ty)
    fn.Ast.fn_ret (cpp_func_name fn.Ast.fn_name)
    Fmt.(list ~sep:(any ", ") pp_decl)
    fn.Ast.fn_params (pp_block 1) fn.Ast.fn_body

let pp_program ppf (p : Ast.program) =
  Fmt.pf ppf "@[<v>";
  List.iter (fun c -> Fmt.pf ppf "%a@,@," (pp_class ()) c) p.Ast.p_classes;
  List.iter (fun g -> Fmt.pf ppf "%a@," pp_global g) p.Ast.p_globals;
  if p.Ast.p_globals <> [] then Fmt.pf ppf "@,";
  List.iter (fun f -> Fmt.pf ppf "%a@,@," pp_func f) p.Ast.p_funcs;
  Fmt.pf ppf "@]"

let program_to_string p = Fmt.str "%a" pp_program p
