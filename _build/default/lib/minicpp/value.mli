(** Runtime scalar values: a 32-bit bit pattern or a float, typed, with a
    sticky attacker-taint bit. *)

open Pna_layout

type prim = I of int | F of float

type t = { prim : prim; ty : Ctype.t; tainted : bool }

val int_ : ?ty:Ctype.t -> ?tainted:bool -> int -> t
(** Canonicalizes to 32 bits; default type [Int]. *)

val float_ : ?ty:Ctype.t -> ?tainted:bool -> float -> t
val ptr : ?ty:Ctype.t -> ?tainted:bool -> int -> t
val null : t

val as_int : t -> int
(** Signed 32-bit view. *)

val as_bits : t -> int
(** Unsigned 32-bit view. *)

val as_float : t -> float
val truthy : t -> bool
val retype : Ctype.t -> t -> t
val taint : t -> t

val coerce : Ctype.t -> t -> t
(** Conversion for storing into a location of the given type (int<->float;
    width truncation happens at the memory write). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
