(** Abstract syntax of MiniC++ — the C++ subset the paper's listings are
    written in.

    The subset covers exactly what the attacks need: classes with
    (multiple) inheritance, virtual methods, constructors and copy
    constructors, placement new for objects and arrays, heap new/delete,
    pointers and pointer arithmetic, arrays, string builtins
    (strcpy/strncpy/memcpy/memset/strlen), attacker input ([cin]) and
    program output ([cout]). There is no implicit bounds or type checking
    anywhere — faithfully to C++. *)

type unop =
  | Neg
  | Not
  | Preinc  (** ++x : increments the lvalue, yields the new value *)
  | Predec

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | Band
  | Bor
  | Shl
  | Shr

type expr =
  | Int of int
  | Flt of float
  | Str of string  (** string literal, interned in read-only memory *)
  | Nullptr
  | Var of string  (** local, parameter or global *)
  | Field of expr * string  (** [e.f] — e is a class-typed lvalue *)
  | Arrow of expr * string  (** [p->f] — p is a pointer to class *)
  | Index of expr * expr  (** [a\[i\]] — array lvalue or pointer *)
  | Deref of expr
  | Addr of expr  (** [&e] *)
  | Fun_addr of string  (** [&f] — text address of a function *)
  | Un of unop * expr
  | Bin of binop * expr * expr
  | Call of string * expr list  (** free function or builtin *)
  | Mcall of expr * string * expr list
      (** [obj->m(...)] or [obj.m(...)]: virtual methods dispatch through
          the vtable in memory, plain methods statically *)
  | Fpcall of expr * expr list  (** call through a function-pointer value *)
  | Cin  (** next attacker-supplied int (tainted) *)
  | Cin_str  (** next attacker-supplied string (tainted), as char* *)
  | New of Pna_layout.Ctype.t * expr list  (** heap [new T(args)] *)
  | New_arr of Pna_layout.Ctype.t * expr  (** heap [new T\[n\]] *)
  | Pnew of expr * Pna_layout.Ctype.t * expr list
      (** [new (place) T(args)] — THE expression under study *)
  | Pnew_arr of expr * Pna_layout.Ctype.t * expr
      (** [new (place) T\[n\]] *)
  | Sizeof of Pna_layout.Ctype.t
  | Cast of Pna_layout.Ctype.t * expr

type stmt =
  | Decl of string * Pna_layout.Ctype.t * expr option
      (** local declaration, optional scalar initializer *)
  | Decl_obj of string * string * expr list
      (** [C name(args)] — class-typed local built with a constructor *)
  | Assign of expr * expr
  | Expr of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr * stmt option * stmt list
  | Return of expr option
  | Delete of expr  (** [delete p] — frees the whole heap block *)
  | Delete_placed of expr * Pna_layout.Ctype.t
      (** delete of a pointer produced by placement new: only the static
          type's footprint is reclaimed unless pool discipline is on
          (§4.5) *)
  | Cout of expr list

type func = {
  fn_name : string;
  fn_params : (string * Pna_layout.Ctype.t) list;
  fn_ret : Pna_layout.Ctype.t;
  fn_body : stmt list;
}

type ginit =
  | Zero  (** uninitialized: lands in bss *)
  | Ival of int
  | Fval of float
  | Sval of string  (** for char arrays; lands in data *)

type global = { g_name : string; g_type : Pna_layout.Ctype.t; g_init : ginit }

type program = {
  p_classes : Pna_layout.Class_def.t list;
  p_globals : global list;
  p_funcs : func list;
}

let func ?(params = []) ?(ret = Pna_layout.Ctype.Void) name body =
  { fn_name = name; fn_params = params; fn_ret = ret; fn_body = body }

let global ?(init = Zero) name ty = { g_name = name; g_type = ty; g_init = init }

let program ?(classes = []) ?(globals = []) funcs =
  { p_classes = classes; p_globals = globals; p_funcs = funcs }

let find_func p name = List.find_opt (fun f -> f.fn_name = name) p.p_funcs

(* Constructors are functions named "C::ctor"; overloads are resolved by
   arity (the implicit [this] parameter is not counted). Copy constructors
   are ordinary one-argument constructors taking a pointer. *)
let ctor_name cname = cname ^ "::ctor"

let find_ctor p cname ~arity =
  List.find_opt
    (fun f -> f.fn_name = ctor_name cname && List.length f.fn_params = arity + 1)
    p.p_funcs

(* short labels for tracing/coverage *)
let stmt_kind = function
  | Decl _ -> "decl"
  | Decl_obj _ -> "decl-obj"
  | Assign _ -> "assign"
  | Expr _ -> "expr"
  | If _ -> "if"
  | While _ -> "while"
  | For _ -> "for"
  | Return _ -> "return"
  | Delete _ -> "delete"
  | Delete_placed _ -> "delete-placed"
  | Cout _ -> "cout"

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int _ | Flt _ | Str _ | Nullptr | Var _ | Fun_addr _ | Cin | Cin_str
  | Sizeof _ ->
    acc
  | Field (e, _) | Arrow (e, _) | Deref e | Addr e | Un (_, e) | Cast (_, e)
  | New_arr (_, e) ->
    fold_expr f acc e
  | Index (a, b) | Bin (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Call (_, es) | New (_, es) -> List.fold_left (fold_expr f) acc es
  | Mcall (e, _, es) | Fpcall (e, es) ->
    List.fold_left (fold_expr f) (fold_expr f acc e) es
  | Pnew (p, _, es) -> List.fold_left (fold_expr f) (fold_expr f acc p) es
  | Pnew_arr (p, _, n) -> fold_expr f (fold_expr f acc p) n

let rec fold_stmt fs fe acc s =
  let acc = fs acc s in
  let expr = fold_expr fe in
  match s with
  | Decl (_, _, None) -> acc
  | Decl (_, _, Some e) | Expr e | Return (Some e) | Delete e
  | Delete_placed (e, _) ->
    expr acc e
  | Decl_obj (_, _, es) | Cout es -> List.fold_left expr acc es
  | Assign (a, b) -> expr (expr acc a) b
  | If (c, t, e) -> fold_stmts fs fe (fold_stmts fs fe (expr acc c) t) e
  | While (c, b) -> fold_stmts fs fe (expr acc c) b
  | For (init, c, step, b) ->
    let acc = match init with Some s -> fold_stmt fs fe acc s | None -> acc in
    let acc = expr acc c in
    let acc = match step with Some s -> fold_stmt fs fe acc s | None -> acc in
    fold_stmts fs fe acc b
  | Return None -> acc

and fold_stmts fs fe acc body = List.fold_left (fold_stmt fs fe) acc body

(* All statements of a program, for the static analyzers. *)
let fold_program fs fe acc p =
  List.fold_left (fun acc fn -> fold_stmts fs fe acc fn.fn_body) acc p.p_funcs
