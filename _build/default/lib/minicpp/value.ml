(** Runtime scalar values of the interpreter.

    Integer-ish values (including pointers) carry a canonical unsigned
    32-bit bit pattern; floats carry an OCaml float. Every value carries a
    taint bit: true when any byte contributing to it came from attacker
    input. Taint is sticky through arithmetic, copies and memory — the
    attack drivers use it to prove that corrupted control data is
    attacker-chosen rather than accidental. *)

open Pna_layout

type prim = I of int | F of float

type t = { prim : prim; ty : Ctype.t; tainted : bool }

let mask32 v = v land 0xffffffff

let int_ ?(ty = Ctype.Int) ?(tainted = false) v =
  { prim = I (mask32 v); ty; tainted }

let float_ ?(ty = Ctype.Double) ?(tainted = false) v = { prim = F v; ty; tainted }

let ptr ?(ty = Ctype.Ptr Ctype.Void) ?(tainted = false) v =
  { prim = I (mask32 v); ty; tainted }

let null = ptr 0

let as_int v =
  match v.prim with
  | I n -> Pna_vmem.Vmem.to_signed32 n
  | F f -> int_of_float f

let as_bits v = match v.prim with I n -> n | F f -> mask32 (int_of_float f)

let as_float v = match v.prim with F f -> f | I n -> float_of_int (Pna_vmem.Vmem.to_signed32 n)

let truthy v = match v.prim with I n -> n <> 0 | F f -> f <> 0.0

let retype ty v = { v with ty }

let taint v = { v with tainted = true }

(* Coerce a value for storage into a location of type [ty]. Width
   truncation happens at the memory write. *)
let coerce ty v =
  match (ty, v.prim) with
  | (Ctype.Float | Ctype.Double), I _ -> { prim = F (as_float v); ty; tainted = v.tainted }
  | (Ctype.Float | Ctype.Double), F _ -> { v with ty }
  | _, F f -> { prim = I (mask32 (int_of_float f)); ty; tainted = v.tainted }
  | _, I _ -> { v with ty }

let pp ppf v =
  match (v.prim, v.ty) with
  | F f, _ -> Fmt.pf ppf "%g" f
  | I n, (Ctype.Ptr _ | Ctype.Fun_ptr) -> Fmt.pf ppf "0x%08x" n
  | I n, Ctype.Char -> Fmt.pf ppf "%c" (Char.chr (n land 0xff))
  | I n, _ -> Fmt.pf ppf "%d" (Pna_vmem.Vmem.to_signed32 n)

let to_string v = Fmt.str "%a" pp v
