(** Pretty-printer: MiniC++ AST -> C++ source, in the dialect {!Parser}
    reads back (print -> parse -> print is the identity; enforced over the
    whole attack catalogue by the test suite). *)

val pp_type : Format.formatter -> Pna_layout.Ctype.t -> unit

val pp_decl : Format.formatter -> string * Pna_layout.Ctype.t -> unit
(** C declarator syntax: stars before the name, array extents after. *)

val pp_expr : ?prec:int -> Format.formatter -> Ast.expr -> unit
(** Precedence-aware (minimal parentheses); [prec] is the context's
    binding level, defaulting to "statement position". *)

val pp_stmt : int -> Format.formatter -> Ast.stmt -> unit
(** The [int] is the indentation depth. *)

val pp_class : unit -> Format.formatter -> Pna_layout.Class_def.t -> unit
val pp_global : Format.formatter -> Ast.global -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
