(** Recursive-descent parser for the MiniC++ concrete syntax — the inverse
    of {!Cpp_print} (the test suite checks print-parse-print fixpoints over
    the whole attack catalogue).

    Dialect reminders: [cin >> lv;] reads an attacker int,
    [cin_int()]/[cin_str()] are the expression forms, [delete[T] p;] is the
    §4.5 placed delete, constructors are [C::C], and the implicit receiver
    appears as an explicit [this] parameter in out-of-line member
    definitions. *)

open Pna_layout

exception Error of { line : int; message : string }

type t = {
  toks : (Lexer.token * int) array;
  mutable pos : int;
  mutable classes : (string, unit) Hashtbl.t;
}

let error t fmt =
  let line = snd t.toks.(min t.pos (Array.length t.toks - 1)) in
  Fmt.kstr (fun message -> raise (Error { line; message })) fmt

let peek t = fst t.toks.(t.pos)
let peek2 t = if t.pos + 1 < Array.length t.toks then fst t.toks.(t.pos + 1) else Lexer.EOF
let advance t = t.pos <- t.pos + 1

let next t =
  let tok = peek t in
  advance t;
  tok

let expect_punct t p =
  match next t with
  | Lexer.PUNCT q when q = p -> ()
  | tok -> error t "expected %S, found %a" p Lexer.pp_token tok

let expect_kw t k =
  match next t with
  | Lexer.KW q when q = k -> ()
  | tok -> error t "expected %S, found %a" k Lexer.pp_token tok

let expect_ident t =
  match next t with
  | Lexer.IDENT x -> x
  | tok -> error t "expected identifier, found %a" Lexer.pp_token tok

let accept_punct t p =
  match peek t with
  | Lexer.PUNCT q when q = p ->
    advance t;
    true
  | _ -> false

let is_class t name = Hashtbl.mem t.classes name

(* ------------------------------------------------------------------ *)
(* types                                                               *)

(* does a type start here? (base type keyword or a known class name) *)
let type_starts t =
  match peek t with
  | Lexer.KW ("void" | "char" | "bool" | "short" | "int" | "float" | "double" | "unsigned")
    ->
    true
  | Lexer.IDENT x -> is_class t x
  | _ -> false

let parse_base_type t =
  match next t with
  | Lexer.KW "void" -> Ctype.Void
  | Lexer.KW "char" -> Ctype.Char
  | Lexer.KW "bool" -> Ctype.Bool
  | Lexer.KW "short" -> Ctype.Short
  | Lexer.KW "int" -> Ctype.Int
  | Lexer.KW "float" -> Ctype.Float
  | Lexer.KW "double" -> Ctype.Double
  | Lexer.KW "unsigned" -> (
    match peek t with
    | Lexer.KW "char" ->
      advance t;
      Ctype.Uchar
    | Lexer.KW "short" ->
      advance t;
      Ctype.Ushort
    | Lexer.KW "int" ->
      advance t;
      Ctype.Uint
    | _ -> Ctype.Uint)
  | Lexer.IDENT x when is_class t x -> Ctype.Class x
  | tok -> error t "expected a type, found %a" Lexer.pp_token tok

let rec wrap_stars ty n = if n = 0 then ty else wrap_stars (Ctype.Ptr ty) (n - 1)

let parse_stars t =
  let n = ref 0 in
  while accept_punct t "*" do
    incr n
  done;
  !n

(* array extents after the declarator name: T x[3][4] *)
let rec parse_extents t ty =
  if accept_punct t "[" then begin
    let n =
      match next t with
      | Lexer.INT n -> n
      | tok -> error t "expected array extent, found %a" Lexer.pp_token tok
    in
    expect_punct t "]";
    Ctype.Array (parse_extents t ty, n)
  end
  else ty

(* a full abstract type, as in sizeof(...) or casts: base + stars + [n] *)
let parse_type t =
  let base = parse_base_type t in
  let ty = wrap_stars base (parse_stars t) in
  (* function-pointer abstract type: void, open paren, star... *)
  if
    ty = Ctype.Void
    && peek t = Lexer.PUNCT "("
    && peek2 t = Lexer.PUNCT "*"
  then begin
    expect_punct t "(";
    expect_punct t "*";
    expect_punct t ")";
    expect_punct t "(";
    expect_punct t ")";
    Ctype.Fun_ptr
  end
  else if accept_punct t "[" then begin
    let n =
      match next t with
      | Lexer.INT n -> n
      | tok -> error t "expected array extent, found %a" Lexer.pp_token tok
    in
    expect_punct t "]";
    Ctype.Array (ty, n)
  end
  else ty

(* declarator: stars, name, extents - or the starred fun-ptr form *)
let parse_declarator t base =
  if base = Ctype.Void && peek t = Lexer.PUNCT "(" && peek2 t = Lexer.PUNCT "*"
  then begin
    expect_punct t "(";
    expect_punct t "*";
    let name = expect_ident t in
    expect_punct t ")";
    expect_punct t "(";
    expect_punct t ")";
    (name, Ctype.Fun_ptr)
  end
  else begin
    let ty = wrap_stars base (parse_stars t) in
    let name = expect_ident t in
    (name, parse_extents t ty)
  end

(* ------------------------------------------------------------------ *)
(* expressions                                                         *)

(* after an open paren: decide cast vs parenthesized expression *)
let looks_like_cast t =
  match peek t with
  | Lexer.KW ("void" | "char" | "bool" | "short" | "int" | "float" | "double" | "unsigned")
    ->
    true
  | Lexer.IDENT x -> is_class t x && peek2 t = Lexer.PUNCT "*"
  | _ -> false

let rec parse_expr t = parse_binary t 14

and parse_binary t max_prec =
  let lhs = parse_unary t in
  parse_binary_rhs t lhs max_prec

and parse_binary_rhs t lhs max_prec =
  let op_of = function
    | "*" -> Some (Ast.Mul, 5)
    | "/" -> Some (Ast.Div, 5)
    | "%" -> Some (Ast.Mod, 5)
    | "+" -> Some (Ast.Add, 6)
    | "-" -> Some (Ast.Sub, 6)
    | "<" -> Some (Ast.Lt, 8)
    | "<=" -> Some (Ast.Le, 8)
    | ">" -> Some (Ast.Gt, 8)
    | ">=" -> Some (Ast.Ge, 8)
    | "==" -> Some (Ast.Eq, 9)
    | "!=" -> Some (Ast.Ne, 9)
    | "&" -> Some (Ast.Band, 10)
    | "|" -> Some (Ast.Bor, 12)
    | "&&" -> Some (Ast.And, 13)
    | "||" -> Some (Ast.Or, 14)
    | _ -> None
  in
  match peek t with
  | Lexer.PUNCT p -> (
    match op_of p with
    | Some (op, prec) when prec <= max_prec ->
      advance t;
      let rhs = parse_binary t (prec - 1) in
      parse_binary_rhs t (Ast.Bin (op, lhs, rhs)) max_prec
    | _ -> lhs)
  | _ -> lhs

and parse_unary t =
  match peek t with
  | Lexer.PUNCT "-" ->
    advance t;
    Ast.Un (Ast.Neg, parse_unary t)
  | Lexer.PUNCT "!" ->
    advance t;
    Ast.Un (Ast.Not, parse_unary t)
  | Lexer.PUNCT "++" ->
    advance t;
    Ast.Un (Ast.Preinc, parse_unary t)
  | Lexer.PUNCT "--" ->
    advance t;
    Ast.Un (Ast.Predec, parse_unary t)
  | Lexer.PUNCT "*" ->
    advance t;
    Ast.Deref (parse_unary t)
  | Lexer.PUNCT "&" ->
    advance t;
    Ast.Addr (parse_unary t)
  | _ -> parse_postfix t

and parse_postfix t =
  let rec loop e =
    match peek t with
    | Lexer.PUNCT "." ->
      advance t;
      let f = expect_ident t in
      if peek t = Lexer.PUNCT "(" then loop (Ast.Mcall (e, f, parse_args t))
      else loop (Ast.Field (e, f))
    | Lexer.PUNCT "->" ->
      advance t;
      let f = expect_ident t in
      if peek t = Lexer.PUNCT "(" then loop (Ast.Mcall (e, f, parse_args t))
      else loop (Ast.Arrow (e, f))
    | Lexer.PUNCT "[" ->
      advance t;
      let ix = parse_expr t in
      expect_punct t "]";
      loop (Ast.Index (e, ix))
    | _ -> e
  in
  loop (parse_primary t)

and parse_args t =
  expect_punct t "(";
  if accept_punct t ")" then []
  else
    let rec go acc =
      let e = parse_expr t in
      if accept_punct t "," then go (e :: acc)
      else begin
        expect_punct t ")";
        List.rev (e :: acc)
      end
    in
    go []

and parse_primary t =
  match peek t with
  | Lexer.INT n ->
    advance t;
    Ast.Int n
  | Lexer.FLOAT f ->
    advance t;
    Ast.Flt f
  | Lexer.STRING s ->
    advance t;
    Ast.Str s
  | Lexer.KW "NULL" ->
    advance t;
    Ast.Nullptr
  | Lexer.KW "sizeof" ->
    advance t;
    expect_punct t "(";
    let ty = parse_type t in
    expect_punct t ")";
    Ast.Sizeof ty
  | Lexer.KW "new" ->
    advance t;
    if peek t = Lexer.PUNCT "(" && not (t.pos + 1 < Array.length t.toks && looks_like_cast_at t (t.pos + 1)) then begin
      (* placement form: new (place) T... *)
      expect_punct t "(";
      let place = parse_expr t in
      expect_punct t ")";
      parse_new_tail t ~place:(Some place)
    end
    else parse_new_tail t ~place:None
  | Lexer.IDENT ("cin_int" | "cin_str") ->
    let which = expect_ident t in
    expect_punct t "(";
    expect_punct t ")";
    if which = "cin_int" then Ast.Cin else Ast.Cin_str
  | Lexer.IDENT x -> (
    advance t;
    if peek t = Lexer.PUNCT "(" then Ast.Call (resolve_func_name t x, parse_args t)
    else Ast.Var x)
  | Lexer.PUNCT "(" ->
    advance t;
    if looks_like_cast t then begin
      let ty = parse_type t in
      expect_punct t ")";
      Ast.Cast (ty, parse_unary t)
    end
    else if peek t = Lexer.PUNCT "*" && (match peek2 t with Lexer.IDENT _ -> true | _ -> false)
    then begin
      (* call through a parenthesized, starred function pointer *)
      advance t;
      let f = parse_postfix t in
      expect_punct t ")";
      if peek t = Lexer.PUNCT "(" then Ast.Fpcall (f, parse_args t)
      else Ast.Deref f
    end
    else begin
      let e = parse_expr t in
      expect_punct t ")";
      e
    end
  | tok -> error t "unexpected token %a in expression" Lexer.pp_token tok

(* checking castability at an arbitrary token index (for `new (` lookahead) *)
and looks_like_cast_at t idx =
  match fst t.toks.(idx) with
  | Lexer.KW ("void" | "char" | "bool" | "short" | "int" | "float" | "double" | "unsigned")
    ->
    true
  | _ -> false

and parse_new_tail t ~place =
  let base = parse_base_type t in
  let stars = parse_stars t in
  let ty = wrap_stars base stars in
  if accept_punct t "[" then begin
    let n = parse_expr t in
    expect_punct t "]";
    match place with
    | Some p -> Ast.Pnew_arr (p, ty, n)
    | None -> Ast.New_arr (ty, n)
  end
  else begin
    let args = if peek t = Lexer.PUNCT "(" then parse_args t else [] in
    match place with
    | Some p -> Ast.Pnew (p, ty, args)
    | None -> Ast.New (ty, args)
  end

(* C::C(…) renders constructors; map back to the "C::ctor" convention *)
and resolve_func_name t x =
  if peek t = Lexer.PUNCT "::" then x (* not reachable: :: handled in qname *)
  else x

(* ------------------------------------------------------------------ *)
(* statements                                                          *)

let rec parse_stmt t : Ast.stmt =
  match peek t with
  | Lexer.KW "if" ->
    advance t;
    expect_punct t "(";
    let c = parse_expr t in
    expect_punct t ")";
    let then_ = parse_block t in
    let else_ =
      match peek t with
      | Lexer.KW "else" ->
        advance t;
        parse_block t
      | _ -> []
    in
    Ast.If (c, then_, else_)
  | Lexer.KW "while" ->
    advance t;
    expect_punct t "(";
    let c = parse_expr t in
    expect_punct t ")";
    Ast.While (c, parse_block t)
  | Lexer.KW "for" ->
    advance t;
    expect_punct t "(";
    let init =
      if accept_punct t ";" then None
      else begin
        let s = parse_simple_stmt t in
        expect_punct t ";";
        Some s
      end
    in
    let c = parse_expr t in
    expect_punct t ";";
    let step = if peek t = Lexer.PUNCT ")" then None else Some (parse_simple_stmt t) in
    expect_punct t ")";
    Ast.For (init, c, step, parse_block t)
  | Lexer.KW "return" ->
    advance t;
    if accept_punct t ";" then Ast.Return None
    else begin
      let e = parse_expr t in
      expect_punct t ";";
      Ast.Return (Some e)
    end
  | Lexer.KW "delete" ->
    advance t;
    if accept_punct t "[" then begin
      let ty = parse_type t in
      expect_punct t "]";
      let e = parse_expr t in
      expect_punct t ";";
      Ast.Delete_placed (e, ty)
    end
    else begin
      let e = parse_expr t in
      expect_punct t ";";
      Ast.Delete e
    end
  | Lexer.KW "cout" ->
    advance t;
    let rec items acc =
      if accept_punct t "<<" then items (parse_expr t :: acc)
      else begin
        expect_punct t ";";
        List.rev acc
      end
    in
    Ast.Cout (items [])
  | _ ->
    let s = parse_simple_stmt t in
    expect_punct t ";";
    s

(* a statement without its trailing ';': declaration, cin, assignment or
   expression *)
and parse_simple_stmt t : Ast.stmt =
  match peek t with
  | Lexer.KW "cin" ->
    advance t;
    expect_punct t ">>";
    let lv = parse_expr t in
    Ast.Assign (lv, Ast.Cin)
  | _ when type_starts t -> (
    let base = parse_base_type t in
    (* class-typed object declaration (no stars): runs the constructor *)
    match (base, peek t) with
    | Ctype.Class cname, Lexer.IDENT x
      when peek2 t = Lexer.PUNCT ";"
           || peek2 t = Lexer.PUNCT "=" ->
      advance t;
      if accept_punct t "=" then begin
        (* C x = C(args); *)
        let cname2 = expect_ident t in
        if cname2 <> cname then error t "constructor %s does not match %s" cname2 cname;
        let args = parse_args t in
        Ast.Decl_obj (x, cname, args)
      end
      else Ast.Decl_obj (x, cname, [])
    | _ ->
      let name, ty = parse_declarator t base in
      if accept_punct t "=" then Ast.Decl (name, ty, Some (parse_expr t))
      else Ast.Decl (name, ty, None))
  | _ -> (
    let e = parse_expr t in
    if accept_punct t "=" then Ast.Assign (e, parse_expr t) else Ast.Expr e)

and parse_block t : Ast.stmt list =
  expect_punct t "{";
  let rec go acc =
    if accept_punct t "}" then List.rev acc else go (parse_stmt t :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* top level                                                           *)

let parse_class t : Class_def.t =
  expect_kw t "class";
  let name = expect_ident t in
  Hashtbl.replace t.classes name ();
  let bases =
    if accept_punct t ":" then begin
      let rec go acc =
        (match peek t with Lexer.KW "public" -> advance t | _ -> ());
        let b = expect_ident t in
        if accept_punct t "," then go (b :: acc) else List.rev (b :: acc)
      in
      go []
    end
    else []
  in
  expect_punct t "{";
  (match peek t with
  | Lexer.KW "public" ->
    advance t;
    expect_punct t ":"
  | _ -> ());
  let fields = ref [] and methods = ref [] in
  let rec members () =
    if accept_punct t "}" then ()
    else begin
      let virtual_ =
        match peek t with
        | Lexer.KW "virtual" ->
          advance t;
          true
        | _ -> false
      in
      let base = parse_base_type t in
      let mname, ty = parse_declarator t base in
      if peek t = Lexer.PUNCT "(" then begin
        (* method declaration: impl lives out of line as name::mname *)
        expect_punct t "(";
        expect_punct t ")";
        expect_punct t ";";
        let impl = name ^ "::" ^ mname in
        methods :=
          (if virtual_ then Class_def.virtual_method ~impl mname
           else Class_def.plain_method ~impl mname)
          :: !methods
      end
      else begin
        expect_punct t ";";
        fields := (mname, ty) :: !fields
      end;
      members ()
    end
  in
  members ();
  expect_punct t ";";
  Class_def.v name ~bases ~methods:(List.rev !methods) (List.rev !fields)

(* qualified function name: C::C -> "C::ctor", C::m -> "C::m" *)
let parse_qname t first =
  if accept_punct t "::" then begin
    let second = expect_ident t in
    if second = first then first ^ "::ctor" else first ^ "::" ^ second
  end
  else first

let parse_params t =
  expect_punct t "(";
  if accept_punct t ")" then []
  else
    let rec go acc =
      let base = parse_base_type t in
      let p = parse_declarator t base in
      if accept_punct t "," then go (p :: acc)
      else begin
        expect_punct t ")";
        List.rev (p :: acc)
      end
    in
    go []

let parse_item t ~classes ~globals ~funcs =
  match peek t with
  | Lexer.KW "class" -> classes := parse_class t :: !classes
  | _ -> (
    let base = parse_base_type t in
    (* fun-ptr global, e.g. a NULL-initialized callback *)
    if base = Ctype.Void && peek t = Lexer.PUNCT "(" && peek2 t = Lexer.PUNCT "*"
    then begin
      let name, ty = parse_declarator t base in
      let init =
        if accept_punct t "=" then (
          match next t with
          | Lexer.KW "NULL" -> Ast.Zero
          | tok -> error t "unsupported global initializer %a" Lexer.pp_token tok)
        else Ast.Zero
      in
      expect_punct t ";";
      globals := Ast.{ g_name = name; g_type = ty; g_init = init } :: !globals
    end
    else begin
      let stars = parse_stars t in
      let first = expect_ident t in
      let qname = parse_qname t first in
      if peek t = Lexer.PUNCT "(" then begin
        (* function definition *)
        let params = parse_params t in
        let body = parse_block t in
        let ret = wrap_stars base stars in
        funcs := Ast.func qname ~params ~ret body :: !funcs
      end
      else begin
        (* global declaration *)
        let ty = parse_extents t (wrap_stars base stars) in
        let init =
          if accept_punct t "=" then (
            match next t with
            | Lexer.INT n -> Ast.Ival n
            | Lexer.FLOAT f -> Ast.Fval f
            | Lexer.STRING s -> Ast.Sval s
            | Lexer.PUNCT "-" -> (
              match next t with
              | Lexer.INT n -> Ast.Ival (-n)
              | tok -> error t "unsupported initializer %a" Lexer.pp_token tok)
            | tok -> error t "unsupported global initializer %a" Lexer.pp_token tok)
          else Ast.Zero
        in
        expect_punct t ";";
        globals := Ast.{ g_name = qname; g_type = ty; g_init = init } :: !globals
      end
    end)

(* After parsing: &f where f is a defined function is a function address,
   not a variable address. *)
let fixup_fun_addrs (p : Ast.program) =
  let is_func n = Ast.find_func p n <> None in
  let rec fe (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Addr (Ast.Var f) when is_func f -> Ast.Fun_addr f
    | Ast.Int _ | Ast.Flt _ | Ast.Str _ | Ast.Nullptr | Ast.Var _
    | Ast.Fun_addr _ | Ast.Cin | Ast.Cin_str | Ast.Sizeof _ ->
      e
    | Ast.Field (b, f) -> Ast.Field (fe b, f)
    | Ast.Arrow (b, f) -> Ast.Arrow (fe b, f)
    | Ast.Index (b, ix) -> Ast.Index (fe b, fe ix)
    | Ast.Deref e -> Ast.Deref (fe e)
    | Ast.Addr e -> Ast.Addr (fe e)
    | Ast.Un (op, e) -> Ast.Un (op, fe e)
    | Ast.Bin (op, a, b) -> Ast.Bin (op, fe a, fe b)
    | Ast.Call (f, args) -> Ast.Call (f, List.map fe args)
    | Ast.Mcall (o, m, args) -> Ast.Mcall (fe o, m, List.map fe args)
    | Ast.Fpcall (f, args) -> Ast.Fpcall (fe f, List.map fe args)
    | Ast.New (ty, args) -> Ast.New (ty, List.map fe args)
    | Ast.New_arr (ty, n) -> Ast.New_arr (ty, fe n)
    | Ast.Pnew (p', ty, args) -> Ast.Pnew (fe p', ty, List.map fe args)
    | Ast.Pnew_arr (p', ty, n) -> Ast.Pnew_arr (fe p', ty, fe n)
    | Ast.Cast (ty, e) -> Ast.Cast (ty, fe e)
  in
  let rec fs (s : Ast.stmt) : Ast.stmt =
    match s with
    | Ast.Decl (x, ty, init) -> Ast.Decl (x, ty, Option.map fe init)
    | Ast.Decl_obj (x, c, args) -> Ast.Decl_obj (x, c, List.map fe args)
    | Ast.Assign (lv, e) -> Ast.Assign (fe lv, fe e)
    | Ast.Expr e -> Ast.Expr (fe e)
    | Ast.If (c, a, b) -> Ast.If (fe c, List.map fs a, List.map fs b)
    | Ast.While (c, b) -> Ast.While (fe c, List.map fs b)
    | Ast.For (i, c, st, b) ->
      Ast.For (Option.map fs i, fe c, Option.map fs st, List.map fs b)
    | Ast.Return e -> Ast.Return (Option.map fe e)
    | Ast.Delete e -> Ast.Delete (fe e)
    | Ast.Delete_placed (e, ty) -> Ast.Delete_placed (fe e, ty)
    | Ast.Cout items -> Ast.Cout (List.map fe items)
  in
  {
    p with
    Ast.p_funcs =
      List.map
        (fun f -> { f with Ast.fn_body = List.map fs f.Ast.fn_body })
        p.Ast.p_funcs;
  }

(* reject duplicate definitions with a proper diagnostic instead of letting
   the loader blow up later *)
let validate (p : Ast.program) =
  let seen = Hashtbl.create 16 in
  let check kind name =
    let key = kind ^ ":" ^ name in
    if Hashtbl.mem seen key then
      raise (Error { line = 0; message = Fmt.str "duplicate %s %s" kind name });
    Hashtbl.replace seen key ()
  in
  List.iter (fun c -> check "class" c.Class_def.c_name) p.Ast.p_classes;
  List.iter (fun g -> check "global" g.Ast.g_name) p.Ast.p_globals;
  List.iter
    (fun f ->
      check "function"
        (Fmt.str "%s/%d" f.Ast.fn_name (List.length f.Ast.fn_params)))
    p.Ast.p_funcs;
  p

(** Parse a full program from source. *)
let program src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let t = { toks; pos = 0; classes = Hashtbl.create 8 } in
  (* pre-scan class names so declarations and casts can recognize them *)
  Array.iteri
    (fun i (tok, _) ->
      match (tok, if i + 1 < Array.length toks then fst toks.(i + 1) else Lexer.EOF) with
      | Lexer.KW "class", Lexer.IDENT n -> Hashtbl.replace t.classes n ()
      | _ -> ())
    toks;
  let classes = ref [] and globals = ref [] and funcs = ref [] in
  while peek t <> Lexer.EOF do
    parse_item t ~classes ~globals ~funcs
  done;
  validate
    (fixup_fun_addrs
       (Ast.program ~classes:(List.rev !classes) ~globals:(List.rev !globals)
          (List.rev !funcs)))

(** Parse a single expression (for tests and tooling). *)
let expression ?(classes = []) src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let t = { toks; pos = 0; classes = Hashtbl.create 8 } in
  List.iter (fun c -> Hashtbl.replace t.classes c ()) classes;
  let e = parse_expr t in
  (match peek t with
  | Lexer.EOF -> ()
  | tok -> error t "trailing input: %a" Lexer.pp_token tok);
  e
