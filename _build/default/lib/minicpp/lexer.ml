(** Hand-rolled lexer for the MiniC++ concrete syntax (the dialect
    {!Cpp_print} emits). *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KW of string  (** class, public, virtual, if, else, while, for, ... *)
  | PUNCT of string  (** operators and separators, longest-match *)
  | EOF

exception Error of { line : int; message : string }

let keywords =
  [
    "class"; "public"; "virtual"; "if"; "else"; "while"; "for"; "return";
    "new"; "delete"; "sizeof"; "cin"; "cout"; "NULL";
    "void"; "char"; "bool"; "short"; "int"; "float"; "double"; "unsigned";
  ]

let puncts =
  (* longest first *)
  [
    "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "++"; "--"; "->"; "::";
    "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "!"; "&"; "|"; "("; ")"; "{";
    "}"; "["; "]"; ";"; ","; "."; ":";
  ]

type t = { src : string; mutable pos : int; mutable line : int }

let create src = { src; pos = 0; line = 1 }

let error t fmt =
  Fmt.kstr (fun message -> raise (Error { line = t.line; message })) fmt

let peek_char t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let advance t =
  (match peek_char t with Some '\n' -> t.line <- t.line + 1 | _ -> ());
  t.pos <- t.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws t =
  match peek_char t with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance t;
    skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
    while peek_char t <> None && peek_char t <> Some '\n' do
      advance t
    done;
    skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' ->
    advance t;
    advance t;
    let rec close () =
      match peek_char t with
      | None -> error t "unterminated comment"
      | Some '*' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
        advance t;
        advance t
      | Some _ ->
        advance t;
        close ()
    in
    close ();
    skip_ws t
  | _ -> ()

let lex_number t =
  let start = t.pos in
  let hex =
    t.src.[t.pos] = '0'
    && t.pos + 1 < String.length t.src
    && (t.src.[t.pos + 1] = 'x' || t.src.[t.pos + 1] = 'X')
  in
  if hex then begin
    advance t;
    advance t;
    while
      match peek_char t with
      | Some c -> is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      | None -> false
    do
      advance t
    done;
    INT (int_of_string (String.sub t.src start (t.pos - start)))
  end
  else begin
    while (match peek_char t with Some c -> is_digit c | None -> false) do
      advance t
    done;
    let is_float =
      match peek_char t with
      | Some '.' when t.pos + 1 < String.length t.src && is_digit t.src.[t.pos + 1]
        ->
        true
      | _ -> false
    in
    if is_float then begin
      advance t;
      while (match peek_char t with Some c -> is_digit c | None -> false) do
        advance t
      done;
      (match peek_char t with
      | Some ('e' | 'E') ->
        advance t;
        (match peek_char t with Some ('+' | '-') -> advance t | _ -> ());
        while (match peek_char t with Some c -> is_digit c | None -> false) do
          advance t
        done
      | _ -> ());
      FLOAT (float_of_string (String.sub t.src start (t.pos - start)))
    end
    else INT (int_of_string (String.sub t.src start (t.pos - start)))
  end

let lex_string t =
  advance t;
  (* opening quote *)
  let b = Buffer.create 16 in
  let rec go () =
    match peek_char t with
    | None -> error t "unterminated string literal"
    | Some '"' -> advance t
    | Some '\\' -> (
      advance t;
      match peek_char t with
      | Some 'n' ->
        Buffer.add_char b '\n';
        advance t;
        go ()
      | Some 't' ->
        Buffer.add_char b '\t';
        advance t;
        go ()
      | Some '\\' ->
        Buffer.add_char b '\\';
        advance t;
        go ()
      | Some '"' ->
        Buffer.add_char b '"';
        advance t;
        go ()
      | Some '0' ->
        Buffer.add_char b '\000';
        advance t;
        go ()
      | Some 'x' ->
        advance t;
        let hex_digit () =
          match peek_char t with
          | Some c
            when is_digit c
                 || (c >= 'a' && c <= 'f')
                 || (c >= 'A' && c <= 'F') ->
            advance t;
            c
          | _ -> error t "bad \\x escape"
        in
        let h1 = hex_digit () in
        let h2 = hex_digit () in
        Buffer.add_char b (Char.chr (int_of_string (Fmt.str "0x%c%c" h1 h2)));
        go ()
      | _ -> error t "unknown escape")
    | Some c ->
      Buffer.add_char b c;
      advance t;
      go ()
  in
  go ();
  STRING (Buffer.contents b)

let next t =
  skip_ws t;
  match peek_char t with
  | None -> EOF
  | Some c when is_digit c -> lex_number t
  | Some '"' -> lex_string t
  | Some c when is_ident_start c ->
    let start = t.pos in
    while (match peek_char t with Some c -> is_ident c | None -> false) do
      advance t
    done;
    let s = String.sub t.src start (t.pos - start) in
    if List.mem s keywords then KW s else IDENT s
  | Some _ -> (
    let matches p =
      let n = String.length p in
      t.pos + n <= String.length t.src && String.sub t.src t.pos n = p
    in
    match List.find_opt matches puncts with
    | Some p ->
      for _ = 1 to String.length p do
        advance t
      done;
      PUNCT p
    | None -> error t "unexpected character %C" (Option.get (peek_char t)))

(** Tokenize the whole input, with line numbers. *)
let tokenize src =
  let t = create src in
  let rec go acc =
    let line = t.line in
    match next t with
    | EOF -> List.rev ((EOF, line) :: acc)
    | tok -> go ((tok, line) :: acc)
  in
  go []

let pp_token ppf = function
  | INT n -> Fmt.pf ppf "INT(%d)" n
  | FLOAT f -> Fmt.pf ppf "FLOAT(%g)" f
  | STRING s -> Fmt.pf ppf "STRING(%S)" s
  | IDENT s -> Fmt.pf ppf "IDENT(%s)" s
  | KW s -> Fmt.pf ppf "KW(%s)" s
  | PUNCT s -> Fmt.pf ppf "%S" s
  | EOF -> Fmt.string ppf "EOF"
