(** Combinators for writing MiniC++ programs compactly.

    The attack library transcribes each listing of the paper with these;
    the result reads close to the original C++. *)

open Pna_layout

include Ast

(* expressions *)
let i n = Int n
let fl x = Flt x
let str s = Str s
let v name = Var name
let null = Nullptr
let cin = Cin
let cin_str = Cin_str
let sizeof ty = Sizeof ty
let fun_addr f = Fun_addr f
let addr e = Addr e
let deref e = Deref e
let idx a j = Index (a, j)
let fld e f = Field (e, f)
let arrow e f = Arrow (e, f)
let call f args = Call (f, args)
let mcall o m args = Mcall (o, m, args)
let fpcall f args = Fpcall (f, args)
let cast ty e = Cast (ty, e)
let pnew place ty args = Pnew (place, ty, args)
let pnew_arr place ty n = Pnew_arr (place, ty, n)
let new_ ty args = New (ty, args)
let new_arr ty n = New_arr (ty, n)
let incr e = Un (Preinc, e)
let decr e = Un (Predec, e)
let not_ e = Un (Not, e)
let neg e = Un (Neg, e)

let ( +: ) a b = Bin (Add, a, b)
let ( -: ) a b = Bin (Sub, a, b)
let ( *: ) a b = Bin (Mul, a, b)
let ( /: ) a b = Bin (Div, a, b)
let ( %: ) a b = Bin (Mod, a, b)
let ( <: ) a b = Bin (Lt, a, b)
let ( <=: ) a b = Bin (Le, a, b)
let ( >: ) a b = Bin (Gt, a, b)
let ( >=: ) a b = Bin (Ge, a, b)
let ( ==: ) a b = Bin (Eq, a, b)
let ( <>: ) a b = Bin (Ne, a, b)
let ( &&: ) a b = Bin (And, a, b)
let ( ||: ) a b = Bin (Or, a, b)

(* statements *)
let decl name ty = Decl (name, ty, None)
let decli name ty e = Decl (name, ty, Some e)
let obj name cname args = Decl_obj (name, cname, args)
let set lv e = Assign (lv, e)
let expr e = Expr e
let if_ c t e = If (c, t, e)
let when_ c t = If (c, t, [])
let while_ c b = While (c, b)
let for_ init cond step body = For (Some init, cond, Some step, body)
let ret e = Return (Some e)
let ret0 = Return None
let delete e = Delete e
let delete_placed e ty = Delete_placed (e, ty)
let cout items = Cout items

(* types *)
let void = Ctype.Void
let char = Ctype.Char
let int = Ctype.Int
let uint = Ctype.Uint
let double = Ctype.Double
let bool_ = Ctype.Bool
let ptr t = Ctype.Ptr t
let char_p = Ctype.Ptr Ctype.Char
let fun_ptr = Ctype.Fun_ptr
let cls name = Ctype.Class name
let arr t n = Ctype.Array (t, n)
let char_arr n = Ctype.Array (Ctype.Char, n)
let int_arr n = Ctype.Array (Ctype.Int, n)
