(* Tests for the wire format and the deserializing service. *)

open Pna_minicpp.Dsl
module Wire = Pna_serial.Wire
module Victim = Pna_serial.Victim
module Interp = Pna_minicpp.Interp
module Machine = Pna_machine.Machine
module Config = Pna_defense.Config
module O = Pna_minicpp.Outcome
module Vmem = Pna_vmem.Vmem

let le32_at s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let test_encode_student () =
  let w = Wire.student ~gpa:2.5 ~year:2012 ~semester:2 () in
  let s = Wire.encode w in
  Alcotest.(check int) "size" 20 (String.length s);
  Alcotest.(check int) "class id" Wire.student_id (le32_at s 0);
  Alcotest.(check int) "year" 2012 (le32_at s Wire.off_year);
  Alcotest.(check int) "semester" 2 (le32_at s Wire.off_semester)

let test_encode_grad () =
  let w = Wire.grad_student ~ssn:[| 7; 8; 9 |] ~courses:[ 1; 2 ] () in
  let s = Wire.encode w in
  Alcotest.(check int) "size" (36 + 8) (String.length s);
  Alcotest.(check int) "ssn[1]" 8 (le32_at s (Wire.off_ssn + 4));
  Alcotest.(check int) "count" 2 (le32_at s Wire.off_course_count);
  Alcotest.(check int) "course[1]" 2 (le32_at s (Wire.off_courses + 4))

let test_claimed_count_override () =
  let w = Wire.grad_student ~courses:[ 1 ] ~claimed_courses:100 () in
  Alcotest.(check int) "lying count" 100
    (le32_at (Wire.encode w) Wire.off_course_count)

let test_gpa_bit_exact () =
  let w = Wire.student ~gpa:3.9 () in
  let s = Wire.encode w in
  let bits = ref 0L in
  for k = 7 downto 0 do
    bits := Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code s.[Wire.off_gpa + k]))
  done;
  Alcotest.(check (float 0.0)) "f64 roundtrip" 3.9 (Int64.float_of_bits !bits)

let service_program ~checked =
  program ~classes:Victim.classes
    ~globals:(Victim.pool_global :: Victim.state_globals)
    [
      Victim.deserialize_func ~checked;
      func "main"
        [
          decl "dgram" (char_arr 128);
          decli "len" int (call "recv" [ v "dgram"; i 128 ]);
          when_ (v "len" >: i 0) [ expr (call "deserialize" [ v "dgram" ]) ];
          ret (i 0);
        ];
    ]

let run_service ~checked payload =
  let prog = service_program ~checked in
  let m = Interp.load ~config:Config.none prog in
  Machine.set_input ~strings:[ payload ] m;
  (Interp.run m prog ~entry:"main", m)

let test_benign_student_deserializes () =
  let o, m =
    run_service ~checked:false
      (Wire.encode (Wire.student ~gpa:3.25 ~year:2013 ~semester:1 ()))
  in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "service failed: %a" O.pp_status st);
  let pool = Machine.global_addr_exn m "pool" in
  Alcotest.(check (float 0.0)) "gpa landed" 3.25 (Vmem.read_f64 (Machine.mem m) pool);
  Alcotest.(check int) "year landed" 2013 (Vmem.read_i32 (Machine.mem m) (pool + 8));
  Alcotest.(check int) "served" 1
    (Vmem.read_i32 (Machine.mem m) (Machine.global_addr_exn m "served"));
  Alcotest.(check bool) "wire data is tainted in memory" true
    (Vmem.range_tainted (Machine.mem m) pool 16)

let test_benign_grad_overflows_silently () =
  (* even an honest NetGradStudent is 48 bytes in a 16-byte pool: the
     overflow exists regardless of malice — the paper's "logic error" *)
  let o, m = run_service ~checked:false (Wire.encode (Wire.grad_student ())) in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "service failed: %a" O.pp_status st);
  let pool = Machine.global_addr_exn m "pool" in
  Alcotest.(check bool) "bytes past the pool written" true
    (Vmem.range_tainted (Machine.mem m) (pool + 16) 8)

let test_checked_service_rejects_grad () =
  let o, m = run_service ~checked:true (Wire.encode (Wire.grad_student ())) in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "service failed: %a" O.pp_status st);
  Alcotest.(check int) "rejected" 1
    (Vmem.read_i32 (Machine.mem m) (Machine.global_addr_exn m "rejected"));
  let pool = Machine.global_addr_exn m "pool" in
  Alcotest.(check bool) "nothing past the pool" false
    (Vmem.range_tainted (Machine.mem m) (pool + 16) 16)

let test_truncated_datagram_harmless () =
  (* recv delivers fewer bytes than any valid datagram; the service reads
     zeros for the missing fields *)
  let o, _ = run_service ~checked:false "\001" in
  match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "service crashed on short datagram: %a" O.pp_status st

(* ---- decode: the defensive receiver ---- *)

let test_decode_student_roundtrip () =
  let w = Wire.student ~gpa:2.75 ~year:2014 ~semester:2 () in
  match Wire.decode (Wire.encode w) with
  | Ok w' ->
    Alcotest.(check int) "class id" w.Wire.class_id w'.Wire.class_id;
    Alcotest.(check (float 0.0)) "gpa" w.Wire.gpa w'.Wire.gpa;
    Alcotest.(check int) "year" w.Wire.year w'.Wire.year;
    Alcotest.(check int) "semester" w.Wire.semester w'.Wire.semester
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_decode_grad_roundtrip () =
  let w = Wire.grad_student ~ssn:[| 11; 22; 33 |] ~courses:[ 5; 6; 7 ] () in
  match Wire.decode (Wire.encode w) with
  | Ok w' ->
    Alcotest.(check (array int)) "ssn" w.Wire.ssn w'.Wire.ssn;
    Alcotest.(check (list int)) "courses" w.Wire.courses w'.Wire.courses;
    Alcotest.(check bool) "honest count" true (w'.Wire.claimed_courses = None)
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_decode_preserves_the_lie () =
  let w = Wire.grad_student ~courses:[ 1; 2 ] ~claimed_courses:4000 () in
  match Wire.decode (Wire.encode w) with
  | Ok w' ->
    Alcotest.(check (list int)) "real words kept" [ 1; 2 ] w'.Wire.courses;
    Alcotest.(check bool) "lie reported" true
      (w'.Wire.claimed_courses = Some 4000)
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_decode_rejects_junk () =
  List.iter
    (fun s ->
      match Wire.decode s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %d junk bytes" (String.length s))
    [ ""; "\003\000\000\000"; String.make 3 '\001'; String.make 21 '\001';
      Wire.encode (Wire.student ()) ^ "x" ]

let prop_decode_roundtrip =
  QCheck.Test.make ~count:300 ~name:"wire: encode/decode round-trip"
    QCheck.(
      quad (int_bound 40) (pair (int_bound 3000) (int_bound 8))
        (triple (int_bound 999) (int_bound 999) (int_bound 999))
        (list_of_size (Gen.int_range 0 8) (int_bound 0xffffff)))
    (fun (gpa10, (year, semester), (s0, s1, s2), courses) ->
      let w =
        Wire.grad_student ~gpa:(float_of_int gpa10 /. 10.0) ~year ~semester
          ~ssn:[| s0; s1; s2 |] ~courses ()
      in
      match Wire.decode (Wire.encode w) with
      | Ok w' ->
        w'.Wire.gpa = w.Wire.gpa && w'.Wire.year = year
        && w'.Wire.semester = semester
        && w'.Wire.ssn = w.Wire.ssn
        && w'.Wire.courses = courses
        && w'.Wire.claimed_courses = None
      | Error _ -> false)

(* ---- perturbed datagrams at the victim: always a classified outcome ---- *)

let classified (o : O.t) =
  match o.O.status with
  | O.Exited _ | O.Crashed _ -> true
  | _ -> false

let test_every_truncation_classified () =
  let full = Wire.encode (Wire.grad_student ~courses:[ 1; 2; 3 ] ()) in
  for keep = 0 to String.length full do
    let o, _ =
      run_service ~checked:false (Wire.truncate_datagram ~keep full)
    in
    if not (classified o) then
      Alcotest.failf "keep=%d: unclassified %a" keep O.pp_status o.O.status
  done

let test_count_inflation_classified () =
  (* a wildly inflated count walks the copy loop off the segment: the
     unchecked service crashes like a SIGSEGV, the checked one rejects *)
  let d =
    Wire.inflate_count ~claimed:0x0fffffff
      (Wire.encode (Wire.grad_student ~courses:[ 1 ] ()))
  in
  let o, _ = run_service ~checked:false d in
  (match o.O.status with
  | O.Crashed _ | O.Timeout _ -> ()
  | st -> Alcotest.failf "unchecked: expected crash/DoS, got %a" O.pp_status st);
  let o, m = run_service ~checked:true d in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "checked: expected clean exit, got %a" O.pp_status st);
  Alcotest.(check int) "checked service rejected it" 1
    (Vmem.read_i32 (Machine.mem m) (Machine.global_addr_exn m "rejected"))

let prop_bit_flips_classified =
  QCheck.Test.make ~count:300 ~name:"victim: bit-flipped datagrams classified"
    QCheck.(pair (int_bound 1000) (int_range 1 255))
    (fun (pos, mask) ->
      let d =
        Wire.flip_byte ~pos ~mask
          (Wire.encode (Wire.grad_student ~courses:[ 1; 2; 3 ] ()))
      in
      let o, _ = run_service ~checked:false d in
      classified o)

(* ---- delivery tampering hook ---- *)

let test_tamper_hook () =
  let w = Wire.student () in
  Fun.protect
    ~finally:(fun () -> Wire.set_tamper None)
    (fun () ->
      Wire.set_tamper (Some (Wire.truncate_datagram ~keep:4));
      Alcotest.(check int) "tampered delivery" 4
        (String.length (Wire.deliver w)));
  Alcotest.(check int) "hook cleared" (Wire.size w)
    (String.length (Wire.deliver w))

(* ---- primitive codecs: the helpers everything above is built on ---- *)

let prop_le32_roundtrip =
  (* any int — including negatives — encodes its two's-complement low 32
     bits; rd32 reads back the unsigned view of exactly those bits *)
  QCheck.Test.make ~count:500 ~name:"wire: le32/rd32 round-trip (incl. negative)"
    QCheck.int
    (fun n ->
      let s = Wire.le32 n in
      String.length s = 4 && Wire.rd32 s 0 = n land 0xffffffff)

let prop_le64_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire: le64/rd64 round-trip (incl. negative)"
    QCheck.int64
    (fun n -> Wire.rd64 (Wire.le64 n) 0 = n)

let prop_f64_roundtrip =
  (* bit-exact through the wire word, compared as bits so NaN passes *)
  QCheck.Test.make ~count:500 ~name:"wire: f64/rdf64 bit-exact round-trip"
    QCheck.float
    (fun x ->
      Int64.bits_of_float (Wire.rdf64 (Wire.f64 x) 0) = Int64.bits_of_float x)

let test_f64_special_values () =
  List.iter
    (fun x ->
      Alcotest.(check int64)
        (Fmt.str "%h survives the wire" x)
        (Int64.bits_of_float x)
        (Int64.bits_of_float (Wire.rdf64 (Wire.f64 x) 0)))
    [ nan; infinity; neg_infinity; -0.0; 0.0; -3.75; Float.max_float;
      Float.min_float; 4.9e-324 (* subnormal *) ]

let test_encode_rejects_unrepresentable_count () =
  (* a count the u32 word cannot carry must refuse at encode time, not
     alias through the le32 mask into a different lie *)
  List.iter
    (fun claimed ->
      let w = Wire.grad_student ~courses:[ 1 ] ~claimed_courses:claimed () in
      match Wire.encode w with
      | _ -> Alcotest.failf "encoded unrepresentable count %d" claimed
      | exception Invalid_argument _ -> ())
    [ -1; min_int; 0x1_0000_0000; max_int ];
  (* the extremes that do fit still encode *)
  List.iter
    (fun claimed ->
      let w = Wire.grad_student ~courses:[ 1 ] ~claimed_courses:claimed () in
      Alcotest.(check int)
        (Fmt.str "count %d carried" claimed)
        claimed
        (le32_at (Wire.encode w) Wire.off_course_count land 0xffffffff))
    [ 0; 0xffffffff ]

let prop_encode_size =
  QCheck.Test.make ~count:200 ~name:"wire: encoded size formula"
    QCheck.(list_of_size (Gen.int_range 0 16) (int_bound 1000))
    (fun courses ->
      let w = Wire.grad_student ~courses () in
      Wire.size w = 36 + (4 * List.length courses))

let prop_courses_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wire: course words round-trip"
    QCheck.(list_of_size (Gen.int_range 1 8) (int_bound 0xffffff))
    (fun courses ->
      let s = Wire.encode (Wire.grad_student ~courses ()) in
      List.for_all2
        (fun j c -> le32_at s (Wire.off_courses + (4 * j)) = c)
        (List.init (List.length courses) Fun.id)
        courses)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "serial",
    [
      t "encode student" test_encode_student;
      t "encode grad student" test_encode_grad;
      t "claimed count override" test_claimed_count_override;
      t "gpa encodes bit-exactly" test_gpa_bit_exact;
      t "benign student request served" test_benign_student_deserializes;
      t "honest grad still overflows the pool" test_benign_grad_overflows_silently;
      t "checked service rejects oversize class" test_checked_service_rejects_grad;
      t "truncated datagram harmless" test_truncated_datagram_harmless;
      t "decode: student round-trips" test_decode_student_roundtrip;
      t "decode: grad round-trips" test_decode_grad_roundtrip;
      t "decode: inflated count preserved as the lie" test_decode_preserves_the_lie;
      t "decode: junk rejected" test_decode_rejects_junk;
      t "victim: every truncation prefix classified" test_every_truncation_classified;
      t "victim: count inflation classified both ways" test_count_inflation_classified;
      t "wire: delivery tamper hook" test_tamper_hook;
      t "wire: f64 special values survive" test_f64_special_values;
      t "wire: unrepresentable count refused at encode"
        test_encode_rejects_unrepresentable_count;
      QCheck_alcotest.to_alcotest prop_le32_roundtrip;
      QCheck_alcotest.to_alcotest prop_le64_roundtrip;
      QCheck_alcotest.to_alcotest prop_f64_roundtrip;
      QCheck_alcotest.to_alcotest prop_encode_size;
      QCheck_alcotest.to_alcotest prop_courses_roundtrip;
      QCheck_alcotest.to_alcotest prop_decode_roundtrip;
      QCheck_alcotest.to_alcotest prop_bit_flips_classified;
    ] )
