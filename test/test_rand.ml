(* The shared SplitMix64 stream: reference vectors, determinism, and the
   uniformity properties the generator and load mix lean on. *)

module R = Pna_rand.Rand

let check = Alcotest.check
let int' = Alcotest.int

(* Canonical SplitMix64 outputs (Steele/Lea/Flood reference, seed 0 and a
   non-trivial seed) — pins the algorithm, not just self-consistency. *)
let test_reference_vectors () =
  let t = R.create 0 in
  check Alcotest.int64 "seed 0 / draw 1" 0xe220a8397b1dcdafL (R.next t);
  check Alcotest.int64 "seed 0 / draw 2" 0x6e789e6aa1b965f4L (R.next t);
  check Alcotest.int64 "seed 0 / draw 3" 0x06c45d188009454fL (R.next t);
  let t = R.create 1234567 in
  check Alcotest.int64 "seed 1234567 / draw 1" 0x599ed017fb08fc85L (R.next t);
  check Alcotest.int64 "seed 1234567 / draw 2" 0x2c73f08458540fa5L (R.next t);
  check Alcotest.int64 "seed 1234567 / draw 3" 0x883ebce5a3f27c77L (R.next t)

let test_determinism () =
  for seed = 1 to 50 do
    let a = R.create seed and b = R.create seed in
    for _ = 1 to 200 do
      check int' "same seed, same stream" (R.int a 1000) (R.int b 1000)
    done
  done

let test_copy_is_independent () =
  let a = R.create 42 in
  for _ = 1 to 17 do
    ignore (R.next a)
  done;
  let b = R.copy a in
  let xs = List.init 50 (fun _ -> R.int a 997) in
  let ys = List.init 50 (fun _ -> R.int b 997) in
  check (Alcotest.list int') "copy continues the same stream" xs ys

let test_fork_diverges () =
  let a = R.create 7 in
  let b = R.fork a in
  let xs = List.init 32 (fun _ -> R.int a 1_000_000) in
  let ys = List.init 32 (fun _ -> R.int b 1_000_000) in
  Alcotest.(check bool) "forked stream differs" true (xs <> ys)

let test_int_bounds () =
  let t = R.create 3 in
  List.iter
    (fun n ->
      for _ = 1 to 2_000 do
        let v = R.int t n in
        if v < 0 || v >= n then
          Alcotest.failf "R.int %d produced out-of-range %d" n v
      done)
    [ 1; 2; 3; 7; 10; 100; 1000; 12_345; 1 lsl 30 ];
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rand.int: bound must be positive") (fun () ->
      ignore (R.int t 0))

(* Every residue of a non-power-of-two bound within 20% of its fair
   share over 30k draws — catches both modulo bias and a broken mix. *)
let test_int_uniform_non_pow2 () =
  let t = R.create 11 in
  let n = 10 in
  let draws = 30_000 in
  let buckets = Array.make n 0 in
  for _ = 1 to draws do
    let v = R.int t n in
    buckets.(v) <- buckets.(v) + 1
  done;
  let fair = draws / n in
  Array.iteri
    (fun i c ->
      if c < fair * 8 / 10 || c > fair * 12 / 10 then
        Alcotest.failf "bucket %d has %d of %d draws (fair %d)" i c draws fair)
    buckets

let test_bool_balanced () =
  let t = R.create 23 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if R.bool t then incr trues
  done;
  if !trues < 4_500 || !trues > 5_500 then
    Alcotest.failf "bool heavily skewed: %d/10000 true" !trues

let test_float_range_and_mean () =
  let t = R.create 5 in
  let sum = ref 0. in
  for _ = 1 to 10_000 do
    let f = R.float t in
    if f < 0. || f >= 1. then Alcotest.failf "float out of [0,1): %f" f;
    sum := !sum +. f
  done;
  let mean = !sum /. 10_000. in
  if mean < 0.45 || mean > 0.55 then Alcotest.failf "float mean off: %f" mean

let test_range_inclusive () =
  let t = R.create 9 in
  let lo = -3 and hi = 3 in
  let seen = Hashtbl.create 8 in
  for _ = 1 to 1_000 do
    let v = R.range t ~lo ~hi in
    if v < lo || v > hi then Alcotest.failf "range out of bounds: %d" v;
    Hashtbl.replace seen v ()
  done;
  check int' "all 7 values of [-3,3] reached" 7 (Hashtbl.length seen)

let test_pick () =
  let t = R.create 13 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 200 do
    let v = R.pick t arr in
    Alcotest.(check bool) "picked member" true (Array.mem v arr)
  done;
  check Alcotest.string "pick_list member" "x" (R.pick_list t [ "x" ]);
  Alcotest.check_raises "empty array rejected"
    (Invalid_argument "Rand.pick: empty array") (fun () ->
      ignore (R.pick t [||]))

let suite =
  ( "rand",
    [
      Alcotest.test_case "reference vectors" `Quick test_reference_vectors;
      Alcotest.test_case "determinism across seeds" `Quick test_determinism;
      Alcotest.test_case "copy is independent" `Quick test_copy_is_independent;
      Alcotest.test_case "fork diverges" `Quick test_fork_diverges;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "int uniform (non-pow2)" `Quick
        test_int_uniform_non_pow2;
      Alcotest.test_case "bool balanced" `Quick test_bool_balanced;
      Alcotest.test_case "float range and mean" `Quick
        test_float_range_and_mean;
      Alcotest.test_case "range inclusive" `Quick test_range_inclusive;
      Alcotest.test_case "pick helpers" `Quick test_pick;
    ] )
