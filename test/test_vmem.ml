(* Unit and property tests for the simulated address space. *)

open Pna_vmem

let mk () =
  let m = Vmem.create () in
  let _ = Vmem.map m ~kind:Segment.Data ~base:0x1000 ~size:0x1000 ~perm:Perm.rw in
  let _ = Vmem.map m ~kind:Segment.Text ~base:0x4000 ~size:0x100 ~perm:Perm.rx in
  let _ = Vmem.map m ~kind:Segment.Stack ~base:0x8000 ~size:0x1000 ~perm:Perm.rwx in
  m

let check_fault name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a fault" name
  | exception Fault.Fault _ -> ()

let test_u8_roundtrip () =
  let m = mk () in
  Vmem.write_u8 m 0x1000 0xab;
  Alcotest.(check int) "u8" 0xab (Vmem.read_u8 m 0x1000);
  Vmem.write_u8 m 0x1fff 0x7;
  Alcotest.(check int) "last byte" 0x7 (Vmem.read_u8 m 0x1fff)

let test_u8_masks () =
  let m = mk () in
  Vmem.write_u8 m 0x1000 0x1ff;
  Alcotest.(check int) "masked to byte" 0xff (Vmem.read_u8 m 0x1000)

let test_u32_little_endian () =
  let m = mk () in
  Vmem.write_u32 m 0x1000 0x11223344;
  Alcotest.(check int) "lsb first" 0x44 (Vmem.read_u8 m 0x1000);
  Alcotest.(check int) "msb last" 0x11 (Vmem.read_u8 m 0x1003);
  Alcotest.(check int) "u32" 0x11223344 (Vmem.read_u32 m 0x1000)

let test_u16 () =
  let m = mk () in
  Vmem.write_u16 m 0x1004 0xbeef;
  Alcotest.(check int) "u16" 0xbeef (Vmem.read_u16 m 0x1004);
  Alcotest.(check int) "low" 0xef (Vmem.read_u8 m 0x1004)

let test_u64 () =
  let m = mk () in
  Vmem.write_u64 m 0x1008 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L (Vmem.read_u64 m 0x1008);
  Alcotest.(check int) "low word" 0x55667788 (Vmem.read_u32 m 0x1008)

let test_f64 () =
  let m = mk () in
  Vmem.write_f64 m 0x1010 3.9;
  Alcotest.(check (float 0.0)) "double" 3.9 (Vmem.read_f64 m 0x1010)

let test_unmapped_fault () =
  let m = mk () in
  check_fault "read" (fun () -> Vmem.read_u8 m 0x0);
  check_fault "write" (fun () -> Vmem.write_u8 m 0x3000 1);
  check_fault "beyond end" (fun () -> Vmem.read_u8 m 0x2000)

let test_straddle_fault () =
  (* a u32 crossing the end of a segment faults at the first missing byte *)
  let m = mk () in
  check_fault "straddle" (fun () -> Vmem.read_u32 m 0x1ffe)

let test_perm_fault () =
  let m = mk () in
  check_fault "write to text" (fun () -> Vmem.write_u8 m 0x4000 1);
  (* read of text is fine *)
  Alcotest.(check int) "text readable" 0 (Vmem.read_u8 m 0x4000)

let test_poke_bypasses_perms () =
  let m = mk () in
  Vmem.poke_u32 m 0x4000 0xdead;
  Alcotest.(check int) "poked" 0xdead (Vmem.read_u32 m 0x4000)

let test_overlap_rejected () =
  let m = mk () in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Vmem.add_segment: overlapping segment") (fun () ->
      ignore (Vmem.map m ~kind:Segment.Heap ~base:0x1800 ~size:0x1000 ~perm:Perm.rw))

let test_signed32 () =
  Alcotest.(check int) "negative" (-1) (Vmem.to_signed32 0xffffffff);
  Alcotest.(check int) "positive" 0x7fffffff (Vmem.to_signed32 0x7fffffff);
  Alcotest.(check int) "min" (-0x80000000) (Vmem.to_signed32 0x80000000);
  Alcotest.(check int) "roundtrip" 0xffffffff (Vmem.of_signed32 (-1))

let test_blit () =
  let m = mk () in
  Vmem.write_string m 0x1000 "hello";
  Vmem.blit m ~src:0x1000 ~dst:0x1100 ~len:5;
  Alcotest.(check string) "copied" "hello" (Vmem.read_bytes m 0x1100 5)

let test_blit_overlapping () =
  let m = mk () in
  Vmem.write_string m 0x1000 "abcdef";
  Vmem.blit m ~src:0x1000 ~dst:0x1002 ~len:4;
  Alcotest.(check string) "memmove semantics" "ababcd" (Vmem.read_bytes m 0x1000 6)

let test_fill () =
  let m = mk () in
  Vmem.fill m ~dst:0x1000 ~len:8 0x2a;
  Alcotest.(check string) "filled" "********" (Vmem.read_bytes m 0x1000 8)

let test_cstring () =
  let m = mk () in
  Vmem.write_string m 0x1000 "user\000tail";
  Alcotest.(check string) "stops at NUL" "user" (Vmem.read_cstring m 0x1000);
  Alcotest.(check string) "bounded" "us"
    (Vmem.read_cstring ~max_len:2 m 0x1000)

let test_taint_travels_with_blit () =
  let m = mk () in
  Vmem.write_u8 ~taint:true m 0x1000 0x41;
  Vmem.write_u8 m 0x1001 0x42;
  Vmem.blit m ~src:0x1000 ~dst:0x1100 ~len:2;
  Alcotest.(check bool) "tainted byte" true (Vmem.taint_of m 0x1100);
  Alcotest.(check bool) "clean byte" false (Vmem.taint_of m 0x1101)

let test_taint_overwrite_clears () =
  let m = mk () in
  Vmem.write_u8 ~taint:true m 0x1000 1;
  Vmem.write_u8 m 0x1000 2;
  Alcotest.(check bool) "untainted after clean write" false (Vmem.taint_of m 0x1000)

let test_range_tainted () =
  let m = mk () in
  Vmem.write_u8 ~taint:true m 0x1005 1;
  Alcotest.(check bool) "range hit" true (Vmem.range_tainted m 0x1000 8);
  Alcotest.(check bool) "range miss" false (Vmem.range_tainted m 0x1000 5);
  Alcotest.(check int) "count" 1 (Vmem.tainted_bytes m 0x1000 8)

let test_set_taint_range () =
  let m = mk () in
  Vmem.set_taint m 0x1000 4 true;
  Alcotest.(check int) "4 tainted" 4 (Vmem.tainted_bytes m 0x1000 8);
  Vmem.set_taint m 0x1000 4 false;
  Alcotest.(check int) "cleared" 0 (Vmem.tainted_bytes m 0x1000 8)

let test_trace () =
  let m = mk () in
  Vmem.enable_trace m;
  Vmem.write_u32 ~tag:"x" m 0x1000 1;
  let t = Vmem.trace m in
  Alcotest.(check int) "4 byte-writes" 4 (List.length t);
  Alcotest.(check string) "tag" "x" (List.hd t).Vmem.w_tag;
  Vmem.clear_trace m;
  Alcotest.(check int) "cleared" 0 (List.length (Vmem.trace m))

let test_find_segment () =
  let m = mk () in
  (match Vmem.find_segment m 0x1234 with
  | Some s -> Alcotest.(check int) "base" 0x1000 s.Segment.base
  | None -> Alcotest.fail "segment not found");
  Alcotest.(check bool) "miss" true (Vmem.find_segment m 0x7000 = None);
  Alcotest.(check bool) "kind lookup" true
    (Vmem.segment_of_kind m Segment.Text <> None)

let test_segments_sorted () =
  let m = mk () in
  let bases = List.map (fun s -> s.Segment.base) (Vmem.segments m) in
  Alcotest.(check (list int)) "ascending" [ 0x1000; 0x4000; 0x8000 ] bases

(* property tests *)

let prop_u32_roundtrip =
  QCheck.Test.make ~count:200 ~name:"vmem: u32 write/read roundtrip"
    QCheck.(pair (int_bound 0xffc) (int_bound 0xffffffff))
    (fun (off, v) ->
      let m = mk () in
      Vmem.write_u32 m (0x1000 + off) v;
      Vmem.read_u32 m (0x1000 + off) = v land 0xffffffff)

let prop_signed_roundtrip =
  QCheck.Test.make ~count:200 ~name:"vmem: signed32 is an involution"
    QCheck.(int_bound 0xffffffff)
    (fun v -> Vmem.of_signed32 (Vmem.to_signed32 v) = v)

let prop_blit_preserves_bytes =
  QCheck.Test.make ~count:100 ~name:"vmem: blit preserves contents"
    QCheck.(pair (string_of_size (Gen.int_range 1 64)) (int_bound 0x700))
    (fun (s, off) ->
      let m = mk () in
      Vmem.write_string m 0x1000 s;
      Vmem.blit m ~src:0x1000 ~dst:(0x1800 + off) ~len:(String.length s);
      Vmem.read_bytes m (0x1800 + off) (String.length s) = s)

let prop_fill_then_read =
  QCheck.Test.make ~count:100 ~name:"vmem: fill writes exactly len bytes"
    QCheck.(pair (int_bound 0xff) (int_range 1 32))
    (fun (v, len) ->
      let m = mk () in
      Vmem.write_u8 m (0x1100 + len) 0x77;
      Vmem.fill m ~dst:0x1100 ~len v;
      Vmem.read_u8 m 0x1100 = v land 0xff
      && Vmem.read_u8 m (0x1100 + len) = 0x77)

(* bounded write-trace ring *)

let test_trace_ring_bounded () =
  let m = mk () in
  Vmem.enable_trace m;
  Vmem.set_trace_cap m 8;
  for i = 0 to 19 do
    Vmem.write_u8 ~tag:"w" m (0x1000 + i) i
  done;
  let t = Vmem.trace m in
  Alcotest.(check int) "ring holds cap records" 8 (List.length t);
  Alcotest.(check (list int)) "oldest evicted, newest retained, in order"
    [ 0x100c; 0x100d; 0x100e; 0x100f; 0x1010; 0x1011; 0x1012; 0x1013 ]
    (List.map (fun r -> r.Vmem.w_addr) t);
  Alcotest.(check int) "evictions counted" 12 (Vmem.trace_dropped m);
  Alcotest.(check int) "surfaced in stats" 12
    (Vmem.access_stats m).Vmem.trace_dropped

let test_set_trace_cap () =
  let m = mk () in
  Alcotest.check_raises "cap must be positive"
    (Invalid_argument "Vmem.set_trace_cap: cap must be positive") (fun () ->
      Vmem.set_trace_cap m 0);
  Vmem.enable_trace m;
  for i = 0 to 5 do
    Vmem.write_u8 m (0x1000 + i) i
  done;
  Vmem.set_trace_cap m 4;
  Alcotest.(check (list int)) "shrinking evicts the oldest"
    [ 0x1002; 0x1003; 0x1004; 0x1005 ]
    (List.map (fun r -> r.Vmem.w_addr) (Vmem.trace m));
  Alcotest.(check int) "shrink evictions counted" 2 (Vmem.trace_dropped m)

let test_trace_survives_restore () =
  let m = mk () in
  Vmem.enable_trace m;
  Vmem.write_u8 ~tag:"before" m 0x1000 1;
  Vmem.write_u8 ~tag:"before" m 0x1001 2;
  let snap = Vmem.snapshot m in
  Vmem.write_u8 ~tag:"after" m 0x1002 3;
  Vmem.restore m snap;
  Alcotest.(check (list string)) "trace rewound with memory"
    [ "before"; "before" ]
    (List.map (fun r -> r.Vmem.w_tag) (Vmem.trace m))

(* armed hooks force the per-byte path: exactly one hook call per byte
   accessed, as the pre-fast-path accessors behaved *)

let bulk_ops m =
  Vmem.write_u32 m 0x1000 0xdeadbeef;
  ignore (Vmem.read_u32 m 0x1000);
  ignore (Vmem.read_u64 m 0x1008);
  Vmem.write_u16 m 0x1010 0xbeef;
  Vmem.blit m ~src:0x1000 ~dst:0x1100 ~len:16;
  Vmem.write_bytes m 0x1200 "user\000";
  ignore (Vmem.read_bytes m 0x1200 5);
  ignore (Vmem.read_cstring m 0x1200);
  Vmem.fill m ~dst:0x1300 ~len:8 0x2a

(* write_u32 4w; read_u32 4r; read_u64 8r; write_u16 2w; blit 16r+16w;
   write_bytes 5w; read_bytes 5r; read_cstring 5r (incl. NUL); fill 8w *)
let bulk_reads = 4 + 8 + 16 + 5 + 5
let bulk_writes = 4 + 2 + 16 + 5 + 8

let test_observer_bypasses_fast_path () =
  let m = mk () in
  let calls = ref 0 in
  Vmem.set_observer m (Some (fun ~access:_ ~addr:_ ~taint:_ -> incr calls));
  bulk_ops m;
  Alcotest.(check int) "one observer call per byte" (bulk_reads + bulk_writes)
    !calls;
  Alcotest.(check int) "reads counted per byte" bulk_reads (Vmem.total_reads m);
  Alcotest.(check int) "writes counted per byte" bulk_writes
    (Vmem.total_writes m)

let test_chaos_bypasses_fast_path () =
  let m = mk () in
  let calls = ref 0 in
  Vmem.set_chaos m
    (Some
       (fun ~access:_ ~addr:_ ~byte ->
         incr calls;
         byte));
  bulk_ops m;
  Alcotest.(check int) "one chaos call per byte" (bulk_reads + bulk_writes)
    !calls

let test_trace_bypasses_fast_path () =
  let m = mk () in
  Vmem.enable_trace m;
  bulk_ops m;
  let recorded = List.fold_left (fun n r -> n + r.Vmem.w_len) 0 (Vmem.trace m) in
  Alcotest.(check int) "every written byte traced" bulk_writes recorded

(* the fast-path accounting matches a hook-free twin exactly *)
let test_fast_path_accounting () =
  let quiet = mk () in
  bulk_ops quiet;
  Alcotest.(check int) "fast-path reads" bulk_reads (Vmem.total_reads quiet);
  Alcotest.(check int) "fast-path writes" bulk_writes (Vmem.total_writes quiet)

(* property: for any layout and operation sequence, the fast path and
   the per-byte reference path (forced by a no-op observer) agree on
   values, faults, final memory, taint and accounting *)

type eq_op =
  | R8 of int
  | R16 of int
  | R32 of int
  | R64 of int
  | W8 of int * int * bool
  | W16 of int * int * bool
  | W32 of int * int * bool
  | W64 of int * int * bool
  | Blit of int * int * int
  | Fill of int * int * int * bool
  | WBytes of int * string * bool
  | RBytes of int * int
  | Cstr of int * int
  | SetTaint of int * int * bool
  | TaintQ of int * int

let eq_layouts =
  [|
    (* adjacent rw|rx boundary plus a gap before an rwx segment *)
    [ (Segment.Data, 0x1000, 0x200, Perm.rw);
      (Segment.Text, 0x1200, 0x100, Perm.rx);
      (Segment.Stack, 0x1400, 0x200, Perm.rwx) ];
    (* small segments with an unmapped hole and a read-only tail *)
    [ (Segment.Data, 0x1000, 0x100, Perm.rw);
      (Segment.Heap, 0x1180, 0x80, Perm.ro) ];
    (* one odd-sized segment, everything else unmapped *)
    [ (Segment.Bss, 0x1000, 0x3ff, Perm.rw) ];
  |]

let mk_eq_layout i =
  let m = Vmem.create () in
  List.iter
    (fun (kind, base, size, perm) -> ignore (Vmem.map m ~kind ~base ~size ~perm))
    eq_layouts.(i mod Array.length eq_layouts);
  m

let eq_gen =
  QCheck.Gen.(
    let addr = int_range 0xf80 0x1700 in
    let len = int_range 0 64 in
    let byte = int_bound 0xff in
    let tnt = bool in
    let op =
      oneof
        [
          map (fun a -> R8 a) addr;
          map (fun a -> R16 a) addr;
          map (fun a -> R32 a) addr;
          map (fun a -> R64 a) addr;
          map3 (fun a v t -> W8 (a, v, t)) addr byte tnt;
          map3 (fun a v t -> W16 (a, v, t)) addr (int_bound 0xffff) tnt;
          map3 (fun a v t -> W32 (a, v, t)) addr (int_bound 0xffffffff) tnt;
          map3 (fun a v t -> W64 (a, v, t)) addr (int_bound 0xffffffff) tnt;
          map3 (fun s d l -> Blit (s, d, l)) addr addr len;
          map3 (fun d l (v, t) -> Fill (d, l, v, t)) addr len (pair byte tnt);
          map3 (fun a s t -> WBytes (a, s, t)) addr (string_size ~gen:char (int_range 0 32)) tnt;
          map2 (fun a l -> RBytes (a, l)) addr len;
          map2 (fun a l -> Cstr (a, l)) addr (int_range 0 16);
          map3 (fun a l t -> SetTaint (a, l, t)) addr len tnt;
          map2 (fun a l -> TaintQ (a, l)) addr len;
        ]
    in
    pair (int_bound 1000) (list_size (int_range 1 40) op))

let eq_apply m = function
  | R8 a -> string_of_int (Vmem.read_u8 m a)
  | R16 a -> string_of_int (Vmem.read_u16 m a)
  | R32 a -> string_of_int (Vmem.read_u32 m a)
  | R64 a -> Int64.to_string (Vmem.read_u64 m a)
  | W8 (a, v, taint) -> Vmem.write_u8 ~taint m a v; ""
  | W16 (a, v, taint) -> Vmem.write_u16 ~taint m a v; ""
  | W32 (a, v, taint) -> Vmem.write_u32 ~taint m a v; ""
  | W64 (a, v, taint) -> Vmem.write_u64 ~taint m a (Int64.of_int v); ""
  | Blit (src, dst, len) -> Vmem.blit m ~src ~dst ~len; ""
  | Fill (dst, len, v, taint) -> Vmem.fill ~taint m ~dst ~len v; ""
  | WBytes (a, s, taint) -> Vmem.write_bytes ~taint m a s; ""
  | RBytes (a, len) -> Vmem.read_bytes m a len
  | Cstr (a, max_len) -> Vmem.read_cstring ~max_len m a
  | SetTaint (a, len, b) -> Vmem.set_taint m a len b; ""
  | TaintQ (a, len) ->
    Printf.sprintf "%b/%d" (Vmem.range_tainted m a len)
      (Vmem.tainted_bytes m a len)

let eq_outcome m op =
  match eq_apply m op with
  | s -> "ok:" ^ s
  | exception Fault.Fault f -> "fault:" ^ Fault.to_string f

let eq_state m =
  ( List.map
      (fun s ->
        (s.Segment.base, Bytes.to_string s.Segment.bytes,
         Bytes.to_string s.Segment.taint))
      (Vmem.segments m),
    (Vmem.total_reads m, Vmem.total_writes m, Vmem.total_taint_writes m,
     Vmem.total_faults m) )

let prop_fast_equals_bytepath =
  QCheck.Test.make ~count:300
    ~name:"vmem: fast path == per-byte path (values, faults, state, stats)"
    (QCheck.make eq_gen) (fun (layout, ops) ->
      let fast = mk_eq_layout layout in
      let slow = mk_eq_layout layout in
      Vmem.set_observer slow (Some (fun ~access:_ ~addr:_ ~taint:_ -> ()));
      List.for_all (fun op -> eq_outcome fast op = eq_outcome slow op) ops
      && eq_state fast = eq_state slow)

(* property: dirty-page rewinds reproduce the snapshot bit for bit — the
   same segment bytes, taint and permissions (and shadow states when the
   oracle rides along) as a twin space running the full-copy reference
   path, through nested snapshot/restore, re-dirtying between rewinds,
   and whichever write path (fast, straddling, per-byte under the
   sanitizer's observer) did the dirtying *)

module San = Pna_sanitizer.Sanitizer

(* fold sanitizer maintenance into the op stream, so shadow pages dirty
   alongside the memory pages they shadow *)
let shadow_mix sn = function
  | W8 (a, v, _) ->
    San.poison sn ~addr:a ~len:(1 + (v land 31))
      (if v land 32 = 0 then San.Heap_redzone else San.Freed)
  | Fill (d, l, _, _) -> San.unpoison sn ~addr:d ~len:l
  | SetTaint (a, l, _) -> San.poison sn ~addr:a ~len:l San.Stack_meta
  | _ -> ()

let cow_state m san =
  ( List.map
      (fun s ->
        (s.Segment.base, Bytes.to_string s.Segment.bytes,
         Bytes.to_string s.Segment.taint, Perm.to_string s.Segment.perm))
      (Vmem.segments m),
    Option.map
      (fun sn ->
        List.map (fun (b, st) -> (b, Bytes.to_string st)) (San.shadow_images sn))
      san )

let prop_cow_restore_bitexact =
  QCheck.Test.make ~count:200
    ~name:"vmem: dirty-tracked restore == full-copy restore, bit for bit"
    (QCheck.make eq_gen) (fun (layout, ops) ->
      let cow = mk_eq_layout layout in
      let full = mk_eq_layout layout in
      Vmem.set_cow full false;
      (* half the cases attach the oracle: its observer forces every op
         down the per-byte path, and its shadow map must rewind too *)
      let sans =
        if layout land 1 = 0 then begin
          let sc = San.attach cow and sf = San.attach full in
          San.set_cow sf false;
          Some (sc, sf)
        end
        else None
      in
      let state m = cow_state m (Option.map (if m == cow then fst else snd) sans) in
      let drive part =
        List.iter
          (fun op ->
            ignore (eq_outcome cow op);
            ignore (eq_outcome full op);
            match sans with
            | None -> ()
            | Some (sc, sf) ->
              shadow_mix sc op;
              shadow_mix sf op)
          part
      in
      let snap () =
        ( (Vmem.snapshot cow, Vmem.snapshot full),
          Option.map (fun (sc, sf) -> (San.snapshot sc, San.snapshot sf)) sans )
      in
      let restore ((vc, vf), sn) =
        Vmem.restore cow vc;
        Vmem.restore full vf;
        match (sans, sn) with
        | Some (sc, sf), Some (hc, hf) ->
          San.restore sc hc;
          San.restore sf hf
        | _ -> ()
      in
      let agree want = state cow = want && state full = want in
      let half = List.length ops / 2 in
      let h1 = List.filteri (fun i _ -> i < half) ops in
      let h2 = List.filteri (fun i _ -> i >= half) ops in
      drive h1;
      let snap1 = snap () in
      let want1 = state cow in
      let ok0 = state full = want1 in
      drive h2;
      let snap2 = snap () in
      let want2 = state cow in
      drive h1;
      (* rewind to the snapshot the spaces are synced to: the COW side
         blits dirty pages only *)
      restore snap2;
      let ok1 = agree want2 in
      drive h2;
      (* rewind to the older snapshot: a sync miss on the COW side, so
         it must fall back to the full-copy path and re-sync *)
      restore snap1;
      let ok2 = agree want1 in
      (* clean rewind: nothing dirty, the fast no-op path *)
      restore snap1;
      let ok3 = agree want1 in
      (* the bitmaps must still track after nested rewinds *)
      drive h1;
      restore snap1;
      let ok4 = agree want1 in
      ok0 && ok1 && ok2 && ok3 && ok4)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "vmem",
    [
      t "u8 roundtrip" test_u8_roundtrip;
      t "u8 masks to byte" test_u8_masks;
      t "u32 little endian" test_u32_little_endian;
      t "u16" test_u16;
      t "u64" test_u64;
      t "f64" test_f64;
      t "unmapped access faults" test_unmapped_fault;
      t "segment-straddling access faults" test_straddle_fault;
      t "permission violation faults" test_perm_fault;
      t "poke bypasses permissions" test_poke_bypasses_perms;
      t "overlapping map rejected" test_overlap_rejected;
      t "signed32 conversions" test_signed32;
      t "blit" test_blit;
      t "blit handles overlap like memmove" test_blit_overlapping;
      t "fill" test_fill;
      t "cstring read" test_cstring;
      t "taint travels with blit" test_taint_travels_with_blit;
      t "clean write clears taint" test_taint_overwrite_clears;
      t "range taint queries" test_range_tainted;
      t "set_taint range" test_set_taint_range;
      t "write trace" test_trace;
      t "find_segment" test_find_segment;
      t "segments sorted" test_segments_sorted;
      t "trace ring bounded, drops counted" test_trace_ring_bounded;
      t "set_trace_cap validates and evicts" test_set_trace_cap;
      t "trace state survives restore" test_trace_survives_restore;
      t "observer forces per-byte path" test_observer_bypasses_fast_path;
      t "chaos hook forces per-byte path" test_chaos_bypasses_fast_path;
      t "trace forces per-byte writes" test_trace_bypasses_fast_path;
      t "fast path counts like byte path" test_fast_path_accounting;
      QCheck_alcotest.to_alcotest prop_u32_roundtrip;
      QCheck_alcotest.to_alcotest prop_signed_roundtrip;
      QCheck_alcotest.to_alcotest prop_blit_preserves_bytes;
      QCheck_alcotest.to_alcotest prop_fill_then_read;
      QCheck_alcotest.to_alcotest prop_fast_equals_bytepath;
      QCheck_alcotest.to_alcotest prop_cow_restore_bitexact;
    ] )
