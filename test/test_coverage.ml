(* Tests for the statement tracer / coverage collector. *)

open Pna_minicpp.Dsl
module Coverage = Pna.Coverage
module Interp = Pna_minicpp.Interp
module Config = Pna_defense.Config

let prog_loops n =
  program
    ~globals:[ global "acc" int ]
    [
      func "tick" [ set (v "acc") (v "acc" +: i 1) ];
      func "idle" [ ret0 ];
      func "main"
        [
          for_
            (decli "j" int (i 0))
            (v "j" <: i n)
            (set (v "j") (v "j" +: i 1))
            [ expr (call "tick" []) ];
          ret (i 0);
        ];
    ]

let run_with_coverage prog =
  let cov, hook = Coverage.collector () in
  let o = Interp.execute ~config:Config.none ~on_stmt:hook prog in
  (cov, o)

let test_counts_scale_with_loop () =
  let cov10, _ = run_with_coverage (prog_loops 10) in
  let cov100, _ = run_with_coverage (prog_loops 100) in
  Alcotest.(check bool) "more iterations, more statements" true
    (cov100.Coverage.total > cov10.Coverage.total * 5);
  Alcotest.(check int) "tick ran 10 times" 10
    (Option.value (Hashtbl.find_opt cov10.Coverage.per_func "tick") ~default:0)

let test_uncovered_function_reported () =
  let cov, _ = run_with_coverage (prog_loops 3) in
  let rows = Coverage.report cov (prog_loops 3) in
  let idle = List.find (fun r -> r.Coverage.cf_name = "idle") rows in
  Alcotest.(check bool) "idle never entered" false idle.Coverage.cf_entered;
  let main = List.find (fun r -> r.Coverage.cf_name = "main") rows in
  Alcotest.(check bool) "main entered" true main.Coverage.cf_entered

let test_static_counts () =
  let rows = Coverage.report (Coverage.create ()) (prog_loops 3) in
  let main = List.find (fun r -> r.Coverage.cf_name = "main") rows in
  (* for + its init decl + step assign + body expr + return = 5 *)
  Alcotest.(check int) "static statements in main" 5 main.Coverage.cf_static

let test_kind_histogram () =
  let cov, _ = run_with_coverage (prog_loops 4) in
  Alcotest.(check (option int)) "4 calls = 4 expr stmts" (Some 4)
    (Hashtbl.find_opt cov.Coverage.per_kind "expr")

let test_no_hook_no_cost () =
  (* same outcome whether or not the tracer is attached *)
  let _, o1 = run_with_coverage (prog_loops 7) in
  let o2 = Interp.execute ~config:Config.none (prog_loops 7) in
  Alcotest.(check int) "same steps" o2.Pna_minicpp.Outcome.steps
    o1.Pna_minicpp.Outcome.steps

(* ---- the per-statement bitmap (fuzzing's coverage-feedback signal) ---- *)

let run_bitmap prog =
  let bm, hook = Coverage.bitmap prog in
  let o = Interp.execute ~config:Config.none ~on_stmt:hook prog in
  (bm, o)

let test_bitmap_counts () =
  let prog = prog_loops 10 in
  let bm, _ = run_bitmap prog in
  Alcotest.(check bool) "site table is nonempty" true (Coverage.sites bm > 0);
  Alcotest.(check bool) "some sites lit" true (Coverage.hits bm > 0);
  Alcotest.(check bool) "idle never lit" true
    (List.for_all
       (fun i ->
         not
           (String.length (Coverage.site_label bm i) >= 4
            && String.sub (Coverage.site_label bm i) 0 4 = "idle"))
       (Coverage.hit_sites bm));
  (* tick's single statement ran exactly 10 times *)
  let tick_sites =
    List.filter
      (fun i ->
        String.length (Coverage.site_label bm i) >= 4
        && String.sub (Coverage.site_label bm i) 0 4 = "tick")
      (Coverage.hit_sites bm)
  in
  Alcotest.(check (list int)) "tick hit-counts" [ 10 ]
    (List.map (Coverage.hit_count bm) tick_sites)

let test_bitmap_reset () =
  let prog = prog_loops 5 in
  let bm, _ = run_bitmap prog in
  let lit_before = Coverage.hits bm in
  Coverage.reset bm;
  Alcotest.(check int) "reset zeroes every count" 0 (Coverage.hits bm);
  Alcotest.(check bool) "site table survives reset" true
    (Coverage.sites bm > 0 && lit_before > 0);
  Alcotest.(check (list int)) "no hit sites after reset" []
    (Coverage.hit_sites bm)

let test_bitmap_merge () =
  let prog = prog_loops 5 in
  let a, _ = run_bitmap prog in
  let acc, _ = Coverage.bitmap prog in
  let first = Coverage.merge ~into:acc a in
  Alcotest.(check int) "every lit site is new on first merge"
    (Coverage.hits a) first;
  let again = Coverage.merge ~into:acc a in
  Alcotest.(check int) "second merge lights nothing new" 0 again;
  (* counts accumulate: each site in acc now holds twice a's count *)
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Fmt.str "doubled count at %s" (Coverage.site_label acc i))
        (2 * Coverage.hit_count a i)
        (Coverage.hit_count acc i))
    (Coverage.hit_sites acc);
  let other, _ = Coverage.bitmap (prog_loops 3) in
  ignore other;
  (* a bitmap of a different program has a different site table *)
  let wrong, _ =
    Coverage.bitmap
      (program ~globals:[ global "acc" int ] [ func "main" [ ret (i 0) ] ])
  in
  Alcotest.check_raises "merging foreign bitmaps is refused"
    (Invalid_argument "Coverage.merge: bitmaps cover different programs")
    (fun () -> ignore (Coverage.merge ~into:acc wrong))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "coverage",
    [
      t "dynamic counts scale with iterations" test_counts_scale_with_loop;
      t "uncovered functions reported" test_uncovered_function_reported;
      t "static statement counts" test_static_counts;
      t "per-kind histogram" test_kind_histogram;
      t "tracer does not change behaviour" test_no_hook_no_cost;
      t "bitmap: sites, hits and per-site counts" test_bitmap_counts;
      t "bitmap: reset keeps the site table" test_bitmap_reset;
      t "bitmap: merge accumulates and reports novelty" test_bitmap_merge;
    ] )
