(* Tests for PNASan, the shadow-memory oracle: shadow-map mechanics,
   heap quarantine wiring, determinism under prepared rewinds, and the
   oracle-completeness sweep over the attack catalogue (the fast twin of
   experiment E14). *)

open Pna_vmem
module San = Pna_sanitizer.Sanitizer
module Heap = Pna_machine.Heap
module Machine = Pna_machine.Machine
module Driver = Pna_attacks.Driver
module Catalog = Pna_attacks.Catalog
module All = Pna_attacks.All
module Config = Pna_defense.Config
module E = Pna.Experiments

let mk_mem () =
  let m = Vmem.create () in
  let _ =
    Vmem.map m ~kind:Segment.Data ~base:0x1000 ~size:0x1000 ~perm:Perm.rw
  in
  m

let state = Alcotest.testable San.pp_state ( = )

(* ---- shadow map mechanics ---- *)

let test_attach_all_addressable () =
  let m = mk_mem () in
  let s = San.attach m in
  Alcotest.check state "fresh shadow" San.Addressable (San.state_at s 0x1000);
  Alcotest.check state "end of segment" San.Addressable (San.state_at s 0x1fff);
  Alcotest.check state "outside any shadow" San.Addressable
    (San.state_at s 0xdead0000);
  Alcotest.(check int) "no violations" 0 (San.total s)

let test_poison_unpoison () =
  let m = mk_mem () in
  let s = San.attach m in
  San.poison s ~addr:0x1100 ~len:16 San.Freed;
  Alcotest.check state "poisoned" San.Freed (San.state_at s 0x1100);
  Alcotest.check state "last byte" San.Freed (San.state_at s 0x110f);
  Alcotest.check state "one past" San.Addressable (San.state_at s 0x1110);
  San.unpoison s ~addr:0x1100 ~len:8;
  Alcotest.check state "cleared half" San.Addressable (San.state_at s 0x1104);
  Alcotest.check state "kept half" San.Freed (San.state_at s 0x1108)

let test_poison_addressable_keeps_meta () =
  (* a placement tail overlapping frame meta must not downgrade it *)
  let m = mk_mem () in
  let s = San.attach m in
  San.poison s ~addr:0x1200 ~len:4 San.Stack_meta;
  San.poison_addressable s ~addr:0x11fc ~len:12 San.Place_tail;
  Alcotest.check state "before meta" San.Place_tail (San.state_at s 0x11fc);
  Alcotest.check state "meta survives" San.Stack_meta (San.state_at s 0x1200);
  Alcotest.check state "after meta" San.Place_tail (San.state_at s 0x1204)

let test_unpoison_state_is_selective () =
  (* a new placement erases a neighbour's guard zone inside its extent
     without disturbing other poison *)
  let m = mk_mem () in
  let s = San.attach m in
  San.poison s ~addr:0x1300 ~len:8 San.Place_guard;
  San.poison s ~addr:0x1308 ~len:8 San.Freed;
  San.unpoison_state s ~addr:0x1300 ~len:16 San.Place_guard;
  Alcotest.check state "guard cleared" San.Addressable (San.state_at s 0x1300);
  Alcotest.check state "freed untouched" San.Freed (San.state_at s 0x1308)

let test_classification_by_state_and_direction () =
  let m = mk_mem () in
  let s = San.attach m in
  San.poison s ~addr:0x1100 ~len:8 San.Heap_redzone;
  (* reading a redzone is not a violation; writing is a heap overflow *)
  ignore (Vmem.read_u8 m 0x1100);
  Alcotest.(check int) "redzone read ignored" 0 (San.total s);
  Vmem.write_u8 m 0x1100 0x41;
  (match San.first s with
  | Some v ->
    Alcotest.(check string) "kind" "heap-overflow" (San.kind_name v.San.v_kind);
    Alcotest.(check int) "faulting addr" 0x1100 v.San.v_addr
  | None -> Alcotest.fail "redzone write unrecorded");
  (* freed memory violates in both directions *)
  San.poison s ~addr:0x1200 ~len:8 San.Freed;
  ignore (Vmem.read_u8 m 0x1200);
  Vmem.write_u8 m 0x1204 0;
  Alcotest.(check bool) "freed R and W recorded" true (San.total s >= 3);
  (* stale bytes flag reads, and a write recycles the byte *)
  San.poison s ~addr:0x1300 ~len:4 San.Stale_tail;
  Vmem.write_u8 m 0x1300 7;
  Alcotest.check state "stale byte recycled by write" San.Addressable
    (San.state_at s 0x1300);
  let before = San.total s in
  ignore (Vmem.read_u8 m 0x1301);
  Alcotest.(check int) "stale read recorded" (before + 1) (San.total s)

let test_guard_zone_taint_gated () =
  let m = mk_mem () in
  let s = San.attach m in
  San.poison s ~addr:0x1400 ~len:San.guard_len San.Place_guard;
  (* untainted writes and any reads are legitimate neighbour traffic *)
  Vmem.write_u8 m 0x1400 1;
  ignore (Vmem.read_u8 m 0x1400);
  Alcotest.(check int) "untainted guard traffic ignored" 0 (San.total s);
  Vmem.write_u8 ~taint:true m 0x1401 0x41;
  match San.first s with
  | Some v ->
    Alcotest.(check string) "tainted guard write is placement overflow"
      "placement-overflow"
      (San.kind_name v.San.v_kind);
    Alcotest.(check bool) "taint recorded" true v.San.v_taint
  | None -> Alcotest.fail "tainted guard write unrecorded"

let test_contiguous_accesses_coalesce () =
  let m = mk_mem () in
  let s = San.attach m in
  San.poison s ~addr:0x1500 ~len:8 San.Heap_redzone;
  Vmem.write_u32 m 0x1500 0x41414141;
  Alcotest.(check int) "4 violating bytes" 4 (San.total s);
  (match San.violations s with
  | [ v ] -> Alcotest.(check int) "one coalesced record" 4 v.San.v_len
  | vs -> Alcotest.failf "expected 1 record, got %d" (List.length vs));
  Vmem.write_u8 m 0x1506 0 (* gap: separate record *);
  Alcotest.(check int) "records" 2 (List.length (San.violations s))

let test_seal_exempt_unseal () =
  let m = mk_mem () in
  let s = San.attach m in
  San.poison s ~addr:0x1600 ~len:8 San.Freed;
  San.exempt s (fun () -> Vmem.write_u8 m 0x1600 0);
  Alcotest.(check int) "exempt thunk unrecorded" 0 (San.total s);
  San.seal s;
  Alcotest.(check bool) "sealed" true (San.sealed s);
  Vmem.write_u8 m 0x1600 0;
  Alcotest.(check int) "sealed run unrecorded" 0 (San.total s);
  San.unseal s;
  Vmem.write_u8 m 0x1600 0;
  Alcotest.(check int) "re-armed" 1 (San.total s)

let test_snapshot_restore_rewinds_oracle () =
  let m = mk_mem () in
  let s = San.attach m in
  San.poison s ~addr:0x1700 ~len:8 San.Freed;
  Vmem.write_u8 m 0x1700 0;
  let snap = San.snapshot s in
  San.poison s ~addr:0x1800 ~len:8 San.Heap_redzone;
  Vmem.write_u8 m 0x1800 0;
  Vmem.write_u8 m 0x1701 0;
  Alcotest.(check int) "pre-restore" 3 (San.total s);
  San.restore s snap;
  Alcotest.(check int) "violations rewound" 1 (San.total s);
  Alcotest.check state "later poison rewound" San.Addressable
    (San.state_at s 0x1800);
  Alcotest.check state "earlier poison kept" San.Freed (San.state_at s 0x1700)

let test_kind_names_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Fmt.str "%a round-trips" San.pp_kind k)
        true
        (San.kind_of_name (San.kind_name k) = Some k))
    San.all_kinds

(* ---- heap wiring: redzones, quarantine, double free ---- *)

let mk_heap () =
  let m = Vmem.create () in
  let _ =
    Vmem.map m ~kind:Segment.Heap ~base:0x10000 ~size:0x4000 ~perm:Perm.rw
  in
  let h = Heap.create m ~base:0x10000 ~size:0x4000 in
  let s = San.attach m in
  Heap.set_sanitizer h (Some s);
  (m, h, s)

let malloc_exn h n =
  match Heap.malloc h n with
  | Some a -> a
  | None -> Alcotest.fail "unexpected OOM"

let test_heap_shadow_geometry () =
  let _, h, s = mk_heap () in
  let a = malloc_exn h 16 in
  Alcotest.check state "payload addressable" San.Addressable (San.state_at s a);
  Alcotest.check state "header is meta" San.Heap_meta
    (San.state_at s (a - Heap.header_size));
  Alcotest.check state "past the block is redzone" San.Heap_redzone
    (San.state_at s (a + 16 + Heap.header_size + 8))

let test_use_after_free_detected () =
  let m, h, s = mk_heap () in
  let a = malloc_exn h 16 in
  Heap.free h a;
  Alcotest.(check int) "quarantined" 1 (Heap.quarantined h);
  Alcotest.check state "payload freed" San.Freed (San.state_at s a);
  ignore (Vmem.read_u8 m a);
  match San.first s with
  | Some v ->
    Alcotest.(check string) "kind" "use-after-free" (San.kind_name v.San.v_kind)
  | None -> Alcotest.fail "UAF unrecorded"

let test_quarantine_bounded_and_reusable () =
  let _, h, _ = mk_heap () in
  let blocks = List.init (Heap.quarantine_capacity + 4) (fun _ -> malloc_exn h 16) in
  List.iter (Heap.free h) blocks;
  Alcotest.(check bool) "ring bounded" true
    (Heap.quarantined h <= Heap.quarantine_capacity);
  (* evicted blocks were really released: the arena still serves memory *)
  Alcotest.(check bool) "evictions reusable" true (Heap.malloc h 16 <> None);
  let st = Heap.stats h in
  Alcotest.(check bool) "in_use non-negative" true (st.Heap.in_use >= 0);
  Alcotest.(check bool) "peak non-negative" true (st.Heap.peak >= 0)

let test_double_free_of_quarantined_block () =
  let _, h, _ = mk_heap () in
  let a = malloc_exn h 16 in
  Heap.free h a;
  (match Heap.free h a with
  | () -> Alcotest.fail "double free of quarantined block undetected"
  | exception Heap.Corrupted (addr, msg) ->
    Alcotest.(check int) "payload address" a addr;
    Alcotest.(check string) "reason" "double free" msg);
  let st = Heap.stats h in
  Alcotest.(check bool) "stats stay non-negative" true
    (st.Heap.in_use >= 0 && st.Heap.frees >= 0)

(* ---- the oracle never perturbs execution ---- *)

let test_oracle_transparent () =
  let a = Pna_attacks.L13_stack_ret.attack in
  let plain = Driver.run ~sanitize:false a in
  let san = Driver.run ~sanitize:true a in
  Alcotest.(check bool) "verdict unchanged" plain.Driver.verdict.Catalog.success
    san.Driver.verdict.Catalog.success;
  Alcotest.(check int) "step count unchanged"
    plain.Driver.outcome.Pna_minicpp.Outcome.steps
    san.Driver.outcome.Pna_minicpp.Outcome.steps;
  Alcotest.(check bool) "violations recorded" true
    (san.Driver.violations <> []);
  Alcotest.(check int) "plain run records nothing" 0
    (List.length plain.Driver.violations)

let test_prepared_rewind_deterministic () =
  let p = Driver.prepare ~sanitize:true Pna_attacks.L05_remote_count.attack in
  let sig_of (r : Driver.result) =
    List.map
      (fun v -> (San.kind_name v.San.v_kind, v.San.v_addr, v.San.v_len))
      r.Driver.violations
  in
  let r1 = Driver.run_prepared p in
  let r2 = Driver.run_prepared p in
  Alcotest.(check bool) "rewound run violates identically" true
    (sig_of r1 = sig_of r2 && r1.Driver.violations <> []);
  Alcotest.(check bool) "verdict stable" r1.Driver.verdict.Catalog.success
    r2.Driver.verdict.Catalog.success

let test_violation_counter_exported () =
  let before =
    Pna_telemetry.Metrics.(
      count
        (counter default "pna_san_violations_total"
           ~labels:[ ("kind", "stack-smash") ]))
  in
  Pna_telemetry.Telemetry.with_enabled (fun () ->
      ignore (Driver.run ~sanitize:true Pna_attacks.L13_stack_ret.attack));
  let after =
    Pna_telemetry.Metrics.(
      count
        (counter default "pna_san_violations_total"
           ~labels:[ ("kind", "stack-smash") ]))
  in
  Alcotest.(check bool) "counter advanced" true (after > before)

(* ---- catalogue sweep: the fast twin of E14 ---- *)

let test_catalog_completeness () =
  List.iter
    (fun (a : Catalog.t) ->
      let expected =
        match List.assoc_opt a.Catalog.id E.e14_expected with
        | Some e -> e
        | None ->
          Alcotest.failf "%s missing from e14_expected" a.Catalog.id
      in
      let r = Driver.run ~sanitize:true a in
      let first =
        match r.Driver.violations with
        | [] -> None
        | v :: _ -> Some (San.kind_name v.San.v_kind)
      in
      Alcotest.(check (option string))
        (Fmt.str "%s first violation" a.Catalog.id)
        expected first;
      (* every flagged attack names the scenario on the record *)
      match r.Driver.violations with
      | v :: _ ->
        Alcotest.(check string)
          (Fmt.str "%s scenario attribution" a.Catalog.id)
          a.Catalog.id v.San.v_scenario
      | [] -> ())
    All.attacks

let test_hardened_twins_flag_free () =
  List.iter
    (fun (a : Catalog.t) ->
      match Driver.run_hardened ~sanitize:true a with
      | None -> ()
      | Some (_, safe, violations) ->
        Alcotest.(check bool) (Fmt.str "%s+hardened safe" a.Catalog.id) true safe;
        Alcotest.(check int)
          (Fmt.str "%s+hardened flag-free" a.Catalog.id)
          0
          (List.length violations))
    All.attacks

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "sanitizer",
    [
      t "attach: everything addressable" test_attach_all_addressable;
      t "poison / unpoison ranges" test_poison_unpoison;
      t "poison_addressable keeps meta" test_poison_addressable_keeps_meta;
      t "unpoison_state is selective" test_unpoison_state_is_selective;
      t "classification by state and direction"
        test_classification_by_state_and_direction;
      t "guard zone is taint-gated" test_guard_zone_taint_gated;
      t "contiguous accesses coalesce" test_contiguous_accesses_coalesce;
      t "seal / exempt / unseal" test_seal_exempt_unseal;
      t "snapshot/restore rewinds the oracle" test_snapshot_restore_rewinds_oracle;
      t "kind names round-trip" test_kind_names_roundtrip;
      t "heap shadow geometry" test_heap_shadow_geometry;
      t "use-after-free detected via quarantine" test_use_after_free_detected;
      t "quarantine bounded, evictions reusable"
        test_quarantine_bounded_and_reusable;
      t "double free of quarantined block raises" test_double_free_of_quarantined_block;
      t "oracle observes without perturbing" test_oracle_transparent;
      t "prepared rewind is violation-deterministic"
        test_prepared_rewind_deterministic;
      t "violation counter exported" test_violation_counter_exported;
      t "catalogue completeness matches E14 expectations"
        test_catalog_completeness;
      t "hardened twins are flag-free" test_hardened_twins_flag_free;
    ] )
