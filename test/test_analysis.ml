(* Tests for the static checkers: the placement checker flags every
   catalogue listing, stays quiet on the hardened variants, understands
   guards, taint and clobbering; the legacy baseline is blind to the whole
   class. *)

open Pna_minicpp.Dsl
module PC = Pna_analysis.Placement_checker
module LC = Pna_analysis.Legacy_checker
module Audit = Pna_analysis.Audit
module F = Pna_analysis.Finding
module C = Pna_attacks.Catalog
module All = Pna_attacks.All
module Schema = Pna_attacks.Schema

let kinds fs = List.map (fun f -> f.F.kind) (List.filter F.actionable fs)

let has kind fs = List.mem kind (kinds fs)

(* one detection test per catalogue entry *)
let detection_cases =
  List.map
    (fun (a : C.t) ->
      Alcotest.test_case (Fmt.str "checker flags %s" a.C.id) `Quick (fun () ->
          let r = Audit.analyze a.C.program in
          Alcotest.(check bool) "placement checker flags it" true
            (Audit.flags (Audit.relevant_kinds a.C.id) r.Audit.placement);
          Alcotest.(check bool) "legacy baseline is silent" false
            (Audit.flags (Audit.relevant_kinds a.C.id) r.Audit.legacy)))
    All.attacks

let hardened_cases =
  List.filter_map
    (fun (a : C.t) ->
      Option.map
        (fun h ->
          Alcotest.test_case (Fmt.str "checker clean on hardened %s" a.C.id)
            `Quick (fun () ->
              Alcotest.(check bool) "no relevant finding" false
                (Audit.flags
                   (Audit.relevant_kinds a.C.id)
                   (Audit.analyze h).Audit.placement)))
        a.C.hardened)
    All.attacks

(* focused unit programs *)

let prog ?(classes = Schema.base_classes) ?(globals = []) ?(funcs = []) body =
  program ~classes ~globals (Schema.base_funcs @ funcs @ [ func "main" body ])

let test_certain_overflow_flagged () =
  let p =
    prog
      ~globals:[ global "s" (cls "Student") ]
      [ expr (pnew (addr (v "s")) (cls "GradStudent") []) ]
  in
  Alcotest.(check bool) "flagged" true (has F.Overflow_certain (PC.analyze p))

let test_exact_fit_not_flagged () =
  let p =
    prog
      ~globals:[ global "s" (cls "Student") ]
      [ expr (pnew (addr (v "s")) (cls "Student") []) ]
  in
  Alcotest.(check (list string)) "no actionable finding" []
    (List.map F.kind_name (kinds (PC.analyze p)))

let test_tainted_count_flagged () =
  let p =
    prog
      ~globals:[ global "pool" (char_arr 64) ]
      [ decli "n" int cin; expr (pnew_arr (v "pool") char (v "n")) ]
  in
  Alcotest.(check bool) "tainted size" true (has F.Tainted_size (PC.analyze p))

let test_constant_count_fits () =
  let p =
    prog
      ~globals:[ global "pool" (char_arr 64) ]
      [ expr (pnew_arr (v "pool") char (i 64)) ]
  in
  Alcotest.(check bool) "64 into 64 is fine" false
    (List.exists (fun k -> k <> F.Info_leak) (kinds (PC.analyze p)))

let test_constant_count_overflow () =
  let p =
    prog
      ~globals:[ global "pool" (char_arr 64) ]
      [ expr (pnew_arr (v "pool") char (i 65)) ]
  in
  Alcotest.(check bool) "65 into 64 flagged" true
    (has F.Overflow_certain (PC.analyze p))

let test_sizeof_guard_recognized () =
  let p =
    prog
      ~globals:[ global "s" (cls "Student") ]
      [
        if_
          (sizeof (cls "GradStudent") <=: sizeof (cls "Student"))
          [ expr (pnew (addr (v "s")) (cls "GradStudent") []) ]
          [];
      ]
  in
  Alcotest.(check (list string)) "guarded placement pruned" []
    (List.map F.kind_name (kinds (PC.analyze p)))

let test_bound_guard_refines () =
  let p =
    prog
      ~globals:[ global "pool" (char_arr 64); global "cap" ~init:(Ival 8) int ]
      [
        decli "n" int cin;
        when_ (v "n" >: v "cap") [ ret0 ];
        expr (pnew_arr (v "pool") char (v "n" *: i 8));
      ]
  in
  Alcotest.(check (list string)) "bounded 8*8 fits 64" []
    (List.map F.kind_name (kinds (PC.analyze p)))

let test_bound_guard_insufficient () =
  (* same guard, but the pool is too small for the bound *)
  let p =
    prog
      ~globals:[ global "pool" (char_arr 32); global "cap" ~init:(Ival 8) int ]
      [
        decli "n" int cin;
        when_ (v "n" >: v "cap") [ ret0 ];
        expr (pnew_arr (v "pool") char (v "n" *: i 8));
      ]
  in
  Alcotest.(check bool) "bounded 64 > 32 flagged" true
    (has F.Overflow_possible (PC.analyze p))

let test_clobber_invalidates_bound () =
  (* the §4.1 two-step: guard, then an overflowing object placement, then
     the guarded variable is used — the checker must distrust the bound *)
  let p =
    prog
      ~globals:[ global "pool" (char_arr 64); global "cap" ~init:(Ival 8) int ]
      [
        decli "n" int cin;
        obj "stud" "Student" [];
        when_ (v "n" >: v "cap") [ ret0 ];
        expr (pnew (addr (v "stud")) (cls "GradStudent") []);
        expr (pnew_arr (v "pool") char (v "n" *: i 8));
      ]
  in
  let fs = PC.analyze p in
  Alcotest.(check bool) "object overflow found" true (has F.Overflow_certain fs);
  Alcotest.(check bool) "bound no longer trusted" true (has F.Tainted_size fs)

let test_member_placement_flagged () =
  (* internal overflow (L10): placing into a member larger than the field *)
  let mp =
    Pna_layout.Class_def.v "Holder" [ ("inner", cls "Student"); ("n", int) ]
  in
  let p =
    prog
      ~classes:(Schema.base_classes @ [ mp ])
      ~globals:[ global "h" (cls "Holder") ]
      [ expr (pnew (addr (fld (v "h") "inner")) (cls "GradStudent") []) ]
  in
  Alcotest.(check bool) "member arena too small" true
    (has F.Overflow_certain (PC.analyze p))

let test_copy_loop_flagged () =
  let p =
    prog
      ~globals:[ global "s" (cls "GradStudent") ]
      ~funcs:
        [
          func "fill" ~params:[ ("remote", ptr (cls "GradStudent")) ]
            [
              decli "st" (ptr (cls "GradStudent"))
                (pnew (addr (v "s")) (cls "GradStudent") []);
              decli "j" int (i (-1));
              while_
                (incr (v "j") <: arrow (v "remote") "year")
                [
                  set
                    (idx (arrow (v "st") "ssn") (v "j"))
                    (idx (arrow (v "remote") "ssn") (v "j"));
                ];
            ];
        ]
      []
  in
  Alcotest.(check bool) "remote-bounded copy flagged" true
    (has F.Copy_overflow (PC.analyze p))

let test_copy_loop_constant_ok () =
  let p =
    prog
      ~globals:[ global "s" (cls "GradStudent") ]
      [
        decli "st" (ptr (cls "GradStudent")) (pnew (addr (v "s")) (cls "GradStudent") []);
        for_
          (decli "j" int (i 0))
          (v "j" <: i 3)
          (set (v "j") (v "j" +: i 1))
          [ set (idx (arrow (v "st") "ssn") (v "j")) (i 0) ];
      ]
  in
  Alcotest.(check bool) "3 <= capacity 3" false (has F.Copy_overflow (PC.analyze p))

(* the E17-surfaced miss: an attacker-controlled memset length is a
   tainted copy size even though no loop or placement is in sight *)
let test_tainted_memset_flagged () =
  let p =
    prog
      ~globals:[ global "pool" (char_arr 64) ]
      [ decli "n" int cin; expr (call "memset" [ v "pool"; i 0x41; v "n" ]) ]
  in
  Alcotest.(check bool) "tainted memset length" true
    (has F.Tainted_size (PC.analyze p))

let test_guarded_memset_quiet () =
  let p =
    prog
      ~globals:[ global "pool" (char_arr 64) ]
      [
        decli "n" int cin;
        if_ (v "n" <=: i 64)
          [ expr (call "memset" [ v "pool"; i 0x41; v "n" ]) ]
          [];
      ]
  in
  Alcotest.(check (list string)) "guard bounds the length" []
    (List.map F.kind_name (kinds (PC.analyze p)))

let test_oversize_memset_flagged () =
  let p =
    prog
      ~globals:[ global "pool" (char_arr 64) ]
      [ expr (call "memset" [ v "pool"; i 0; i 100 ]) ]
  in
  Alcotest.(check bool) "constant 100 > 64" true
    (has F.Copy_overflow (PC.analyze p))

(* the E17-surfaced false positive: the runtime heap hands out
   align8-rounded blocks ([Heap.block_size]), so a 16-byte object in a
   [new char[13]] block fits the 16 bytes actually allocated *)
let test_heap_padding_not_flagged () =
  let p =
    prog
      [
        decli "g" (ptr char) (new_arr char (i 13));
        expr (pnew (v "g") (cls "Student") []);
      ]
  in
  Alcotest.(check (list string)) "padding absorbs the placement" []
    (List.map F.kind_name (kinds (PC.analyze p)))

let test_info_leak_flagged_and_memset_suppresses () =
  let leaky =
    prog
      ~globals:[ global "pool" (char_arr 64) ]
      [ expr (pnew_arr (v "pool") char (i 16)) ]
  in
  Alcotest.(check bool) "leak flagged" true (has F.Info_leak (PC.analyze leaky));
  let sanitized =
    prog
      ~globals:[ global "pool" (char_arr 64) ]
      [
        expr (call "memset" [ v "pool"; i 0; i 64 ]);
        expr (pnew_arr (v "pool") char (i 16));
      ]
  in
  Alcotest.(check bool) "memset suppresses" false
    (has F.Info_leak (PC.analyze sanitized))

let test_delete_placed_flagged () =
  let p =
    prog
      ~globals:[ global "g" (ptr (cls "GradStudent")) ]
      [
        set (v "g") (new_ (cls "GradStudent") []);
        decli "st" (ptr (cls "Student")) (pnew (v "g") (cls "Student") []);
        delete_placed (v "st") (cls "Student");
      ]
  in
  Alcotest.(check bool) "memory leak flagged" true
    (has F.Memory_leak (PC.analyze p))

let test_placement_through_heap_pointer () =
  let p =
    prog
      [
        decli "g" (ptr (cls "Student")) (new_ (cls "Student") []);
        expr (pnew (v "g") (cls "GradStudent") []);
      ]
  in
  Alcotest.(check bool) "heap block too small" true
    (has F.Overflow_certain (PC.analyze p))

let test_unknown_arena_reported_unverifiable () =
  let p =
    prog
      ~funcs:
        [
          func "f" ~params:[ ("p", ptr char) ]
            [ expr (pnew (v "p") (cls "GradStudent") []) ];
        ]
      []
  in
  Alcotest.(check bool) "possible-overflow on unknown arena" true
    (has F.Overflow_possible (PC.analyze p))

let test_misalignment_flagged () =
  let p =
    prog
      ~globals:[ global "buf" (char_arr 32) ]
      [ expr (pnew (v "buf") (cls "Student") []) ]
  in
  Alcotest.(check bool) "align-8 class into char arena flagged" true
    (has F.Misalignment (PC.analyze p))

let test_aligned_placement_quiet () =
  let p =
    prog
      ~globals:[ global "s" (cls "Student") ]
      [ expr (pnew (addr (v "s")) (cls "Student") []) ]
  in
  Alcotest.(check bool) "class-into-class arena aligned" false
    (has F.Misalignment (PC.analyze p))

let test_pointer_arith_narrows_arena () =
  (* &pool + 24: only 8 of 32 bytes remain; a 16-byte object overflows *)
  let p =
    prog
      ~globals:[ global "pool" (char_arr 32) ]
      [ expr (pnew (v "pool" +: i 24) (cls "Student") []) ]
  in
  Alcotest.(check bool) "offset placement bounds-checked" true
    (has F.Overflow_certain (PC.analyze p))

let test_pointer_arith_fitting_offset () =
  let p =
    prog
      ~globals:[ global "pool" (char_arr 32) ]
      [ expr (pnew_arr (v "pool" +: i 16) char (i 16)) ]
  in
  Alcotest.(check bool) "fitting offset not flagged as overflow" false
    (has F.Overflow_certain (PC.analyze p))

(* ---- interprocedural mode ---- *)

let place_through_pointer ~arena_ty =
  prog
    ~globals:[ global "arena" arena_ty ]
    ~funcs:
      [
        func "place_at" ~params:[ ("p", ptr char) ]
          [ expr (pnew (v "p") (cls "GradStudent") []) ];
      ]
    [ expr (call "place_at" [ cast char_p (addr (v "arena")) ]); ret (i 0) ]

let test_interproc_sharpens () =
  let p = place_through_pointer ~arena_ty:(cls "Student") in
  Alcotest.(check bool) "intraproc: only possible" false
    (has F.Overflow_certain (PC.analyze p));
  Alcotest.(check bool) "interproc: certain" true
    (has F.Overflow_certain (PC.analyze ~interproc:true p))

let test_interproc_removes_fp () =
  let p = place_through_pointer ~arena_ty:(char_arr 128) in
  Alcotest.(check bool) "intraproc: spurious possible-overflow" true
    (has F.Overflow_possible (PC.analyze p));
  Alcotest.(check bool) "interproc: no overflow finding" false
    (has F.Overflow_possible (PC.analyze ~interproc:true p)
    || has F.Overflow_certain (PC.analyze ~interproc:true p))

let test_interproc_joins_call_sites () =
  (* two call sites with different arenas: the join must stay conservative *)
  let p =
    prog
      ~globals:[ global "small" (cls "Student"); global "big" (char_arr 128) ]
      ~funcs:
        [
          func "place_at" ~params:[ ("p", ptr char) ]
            [ expr (pnew (v "p") (cls "GradStudent") []) ];
        ]
      [
        expr (call "place_at" [ cast char_p (addr (v "small")) ]);
        expr (call "place_at" [ v "big" ]);
        ret (i 0);
      ]
  in
  let fs = PC.analyze ~interproc:true p in
  Alcotest.(check bool) "joined arena cannot be proven safe" true
    (has F.Overflow_possible fs || has F.Overflow_certain fs)

let test_interproc_recursion_terminates () =
  let p =
    prog
      ~funcs:
        [
          func "loop" ~params:[ ("n", int) ]
            [ when_ (v "n" >: i 0) [ expr (call "loop" [ v "n" -: i 1 ]) ] ];
        ]
      [ expr (call "loop" [ i 5 ]); ret (i 0) ]
  in
  Alcotest.(check (list string)) "no findings, no divergence" []
    (List.map F.kind_name (kinds (PC.analyze ~interproc:true p)))

let test_interproc_recv_taints_callee () =
  (* attacker bytes received in main flow into the callee's count *)
  let p =
    prog
      ~globals:[ global "pool" (char_arr 64) ]
      ~funcs:
        [
          func "handle" ~params:[ ("buf", ptr char) ]
            [
              decli "n" int (deref (cast (ptr int) (v "buf")));
              expr (pnew_arr (v "pool") char (v "n"));
            ];
        ]
      [
        decl "dgram" (char_arr 16);
        expr (call "recv" [ v "dgram"; i 16 ]);
        expr (call "handle" [ v "dgram" ]);
        ret (i 0);
      ]
  in
  Alcotest.(check bool) "tainted size across the call" true
    (has F.Tainted_size (PC.analyze ~interproc:true p))

let interproc_catalogue_cases =
  List.map
    (fun (a : C.t) ->
      Alcotest.test_case (Fmt.str "interproc still flags %s" a.C.id) `Quick
        (fun () ->
          let fs = PC.analyze ~interproc:true a.C.program in
          Alcotest.(check bool) "flagged" true
            (List.exists
               (fun f ->
                 F.actionable f
                 && List.mem f.F.kind (Audit.relevant_kinds a.C.id))
               fs)))
    All.attacks

(* legacy checker behaviour *)

let test_legacy_flags_strcpy () =
  let p =
    prog
      ~globals:[ global "buf" (char_arr 8) ]
      [ expr (call "strcpy" [ v "buf"; cin_str ]) ]
  in
  Alcotest.(check bool) "strcpy warned" true
    (List.exists (fun f -> f.F.kind = F.String_misuse) (LC.analyze p))

let test_legacy_flags_oversize_literal_strncpy () =
  let p =
    prog
      ~globals:[ global "buf" (char_arr 8) ]
      [ expr (call "strncpy" [ v "buf"; cin_str; i 16 ]) ]
  in
  Alcotest.(check bool) "literal overflow seen" true
    (List.exists (fun f -> f.F.kind = F.String_misuse) (LC.analyze p))

let test_legacy_silent_on_fitting_strncpy () =
  let p =
    prog
      ~globals:[ global "buf" (char_arr 16) ]
      [ expr (call "strncpy" [ v "buf"; cin_str; i 16 ]) ]
  in
  Alcotest.(check int) "silent" 0 (List.length (LC.analyze p))

let test_legacy_blind_to_placement () =
  let p =
    prog
      ~globals:[ global "s" (cls "Student") ]
      [ expr (pnew (addr (v "s")) (cls "GradStudent") []) ]
  in
  Alcotest.(check int) "nothing at all" 0 (List.length (LC.analyze p))

(* abstract-domain properties *)

let size_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Pna_analysis.Absdom.Known n) (int_range 0 256);
        map (fun n -> Pna_analysis.Absdom.Bounded n) (int_range 0 256);
        return Pna_analysis.Absdom.Tainted;
        return Pna_analysis.Absdom.Unknown;
      ])

let size_arb =
  QCheck.make
    ~print:(fun s -> Fmt.str "%a" Pna_analysis.Absdom.pp_size s)
    size_gen

let concretize = function
  | Pna_analysis.Absdom.Known n -> [ n ]
  | Pna_analysis.Absdom.Bounded n -> [ 0; n / 2; n ]
  | Pna_analysis.Absdom.Tainted | Pna_analysis.Absdom.Unknown ->
    [ 0; 1; 64; 100000 ]

let prop_fits_sound =
  QCheck.Test.make ~count:500
    ~name:"absdom: Fits verdict is sound for every concretization"
    QCheck.(pair size_arb (int_range 0 256))
    (fun (placed, arena) ->
      match Pna_analysis.Absdom.fits ~placed ~arena:(Known arena) with
      | Pna_analysis.Absdom.Fits ->
        List.for_all (fun p -> p <= arena) (concretize placed)
      | Pna_analysis.Absdom.Overflows ->
        List.for_all (fun p -> p > arena) (concretize placed)
      | _ -> true)

let prop_taint_sticky_mul =
  QCheck.Test.make ~count:200 ~name:"absdom: taint is sticky through mul"
    size_arb (fun s ->
      Pna_analysis.Absdom.mul Pna_analysis.Absdom.Tainted s
      = Pna_analysis.Absdom.Tainted)

let prop_known_arithmetic =
  QCheck.Test.make ~count:200 ~name:"absdom: Known arithmetic is exact"
    QCheck.(pair (int_range 0 1000) (int_range 0 1000))
    (fun (a, b) ->
      Pna_analysis.Absdom.add (Known a) (Known b) = Known (a + b)
      && Pna_analysis.Absdom.mul (Known a) (Known b) = Known (a * b))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "analysis",
    detection_cases @ hardened_cases @ interproc_catalogue_cases
    @ [
        t "certain overflow flagged" test_certain_overflow_flagged;
        t "exact fit not flagged" test_exact_fit_not_flagged;
        t "tainted array count flagged" test_tainted_count_flagged;
        t "constant count that fits is quiet" test_constant_count_fits;
        t "constant count overflow flagged" test_constant_count_overflow;
        t "sizeof guard prunes the safe branch" test_sizeof_guard_recognized;
        t "bound guard refines the count" test_bound_guard_refines;
        t "insufficient bound still flagged" test_bound_guard_insufficient;
        t "overflow clobbers established bounds (two-step)" test_clobber_invalidates_bound;
        t "placement into a member field checked" test_member_placement_flagged;
        t "remote-bounded copy loop flagged" test_copy_loop_flagged;
        t "constant copy loop within capacity quiet" test_copy_loop_constant_ok;
        t "tainted memset length flagged" test_tainted_memset_flagged;
        t "guarded memset quiet" test_guarded_memset_quiet;
        t "oversize constant memset flagged" test_oversize_memset_flagged;
        t "heap padding absorbs exact placement" test_heap_padding_not_flagged;
        t "info leak flagged; memset suppresses" test_info_leak_flagged_and_memset_suppresses;
        t "placement-delete mismatch flagged" test_delete_placed_flagged;
        t "heap-pointer placement checked" test_placement_through_heap_pointer;
        t "unknown arena reported as unverifiable" test_unknown_arena_reported_unverifiable;
        t "misalignment into char arena flagged" test_misalignment_flagged;
        t "aligned placement quiet" test_aligned_placement_quiet;
        t "pointer arithmetic narrows the arena" test_pointer_arith_narrows_arena;
        t "fitting offset placement quiet" test_pointer_arith_fitting_offset;
        t "interproc sharpens possible to certain" test_interproc_sharpens;
        t "interproc removes unknown-arena FP" test_interproc_removes_fp;
        t "interproc joins call sites conservatively" test_interproc_joins_call_sites;
        t "interproc terminates on recursion" test_interproc_recursion_terminates;
        t "interproc carries recv taint across calls" test_interproc_recv_taints_callee;
        t "legacy: strcpy warned" test_legacy_flags_strcpy;
        t "legacy: literal strncpy overflow seen" test_legacy_flags_oversize_literal_strncpy;
        t "legacy: fitting strncpy silent" test_legacy_silent_on_fitting_strncpy;
        t "legacy: blind to placement new" test_legacy_blind_to_placement;
        QCheck_alcotest.to_alcotest prop_fits_sound;
        QCheck_alcotest.to_alcotest prop_taint_sticky_mul;
        QCheck_alcotest.to_alcotest prop_known_arithmetic;
      ] )
