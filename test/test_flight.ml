(* Tests for the attack flight recorder: the bounded global ring, the
   per-run session, and the forensic bundle round-trip — a dumped bundle
   must name the same first corrupting access as the live sanitizer. *)

module Flight = Pna_flight.Flight
module J = Pna_telemetry.Jsonx
module Driver = Pna_attacks.Driver
module Catalog = Pna_attacks.Catalog
module San = Pna_sanitizer.Sanitizer

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let get = function Some v -> v | None -> Alcotest.fail "unexpected None"

let attack id =
  match
    List.find_opt (fun a -> a.Catalog.id = id) Pna_attacks.All.attacks
  with
  | Some a -> a
  | None -> Alcotest.failf "unknown attack %s" id

(* every test leaves the process-global ring empty at default capacity *)
let isolated f () =
  Flight.capacity := Flight.default_capacity;
  Flight.reset ();
  Fun.protect ~finally:(fun () ->
      Flight.capacity := Flight.default_capacity;
      Flight.reset ())
    f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let dir_seq = ref 0

let with_tmp_dir f =
  incr dir_seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "pna-flight-test-%d-%d" (Unix.getpid ()) !dir_seq)
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

(* ---- the global ring ---- *)

let test_ring_bounds =
  isolated (fun () ->
      Flight.capacity := 8;
      for i = 1 to 11 do
        Flight.note ~kind:"t" [ ("i", J.Int i) ]
      done;
      let es = Flight.entries () in
      Alcotest.(check int) "bounded at capacity" 8 (List.length es);
      Alcotest.(check int) "overwrites counted as drops" 3 (Flight.dropped ());
      (* the oldest entries are the ones dropped; order is by sequence *)
      (match es with
      | first :: _ ->
        Alcotest.(check int) "oldest surviving seq" 3 first.Flight.e_seq
      | [] -> Alcotest.fail "ring empty");
      Alcotest.(check bool) "sequence order" true
        (List.sort
           (fun a b -> compare a.Flight.e_seq b.Flight.e_seq)
           es
        = es);
      Flight.reset ();
      Alcotest.(check int) "reset clears entries" 0
        (List.length (Flight.entries ()));
      Alcotest.(check int) "reset clears drops" 0 (Flight.dropped ()))

(* ---- session basics ---- *)

let test_session_steps () =
  let fs = Flight.start ~scenario:"s" ~config:"none" in
  Alcotest.(check bool) "no latch before any violation" true
    (Flight.first_violation fs = None);
  for _ = 1 to 5 do
    Flight.tick fs
  done;
  Alcotest.(check int) "steps counted" 5 (Flight.step fs)

(* a benign session still dumps a complete, parseable bundle *)
let test_dump_minimal =
  isolated (fun () ->
      with_tmp_dir @@ fun dir ->
      let fs = Flight.start ~scenario:"mini" ~config:"none" in
      Flight.tick fs;
      let bundle = Flight.dump ~dir ~status:"exited 0" fs in
      Alcotest.(check bool) "timeline written" true
        (Sys.file_exists (Filename.concat bundle "timeline.jsonl"));
      match Flight.load_verdict bundle with
      | Error e -> Alcotest.failf "load_verdict: %s" e
      | Ok v ->
        Alcotest.(check string) "status echoed" "exited 0"
          (get (J.to_str (get (J.member "status" v))));
        Alcotest.(check int) "steps echoed" 1
          (get (J.to_int (get (J.member "steps" v))));
        Alcotest.(check bool) "no first violation" true
          (J.member "first_violation" v = Some J.Null))

(* ---- forensic bundle round-trip ---- *)

(* the acceptance property behind `pna forensics`: the bundle's verdict
   names the same first corrupting access (statement site + faulting
   address) as the live sanitizer's first recorded violation *)
let test_forensic_bundle =
  isolated (fun () ->
      with_tmp_dir @@ fun dir ->
      let r, fl, bundle = Driver.run_forensic ~dir (attack "L10-internal") in
      let live =
        match r.Driver.violations with
        | v :: _ -> v
        | [] -> Alcotest.fail "hot attack recorded no violations"
      in
      (* the latch holds the first violation, immune to later volume *)
      (match Flight.first_violation fl with
      | Some f ->
        Alcotest.(check string) "latched site" live.San.v_site
          f.Flight.fv_violation.San.v_site;
        Alcotest.(check int) "latched addr" live.San.v_addr
          f.Flight.fv_violation.San.v_addr
      | None -> Alcotest.fail "latch empty after a violation");
      List.iter
        (fun f ->
          Alcotest.(check bool) (f ^ " written") true
            (Sys.file_exists (Filename.concat bundle f)))
        [
          "timeline.jsonl"; "events.jsonl"; "writes.jsonl"; "trace.json";
          "shadow.txt"; "verdict.json";
        ];
      (match Flight.load_verdict bundle with
      | Error e -> Alcotest.failf "load_verdict: %s" e
      | Ok v ->
        let fv = get (J.member "first_violation" v) in
        Alcotest.(check string) "bundle names the live site" live.San.v_site
          (get (J.to_str (get (J.member "site" fv))));
        Alcotest.(check int) "bundle names the live address" live.San.v_addr
          (get (J.to_int (get (J.member "addr" fv))));
        (* taint provenance: every cited write overlaps the corrupted
           range *)
        match J.member "provenance" fv with
        | Some (J.List (_ :: _ as ws)) ->
          List.iter
            (fun w ->
              let addr = get (J.to_int (get (J.member "addr" w))) in
              let len = get (J.to_int (get (J.member "len" w))) in
              Alcotest.(check bool) "write overlaps corrupted range" true
                (addr < live.San.v_addr + live.San.v_len
                && addr + len > live.San.v_addr))
            ws
        | _ -> Alcotest.fail "no provenance in verdict");
      (* the narrative reconstructs from the bundle directory alone *)
      let out = Fmt.str "%a" Flight.report bundle in
      List.iter
        (fun sub ->
          Alcotest.(check bool) (Fmt.str "report mentions %S" sub) true
            (contains ~sub out))
        [ "forensic timeline"; "L10-internal"; "first corrupting access" ])

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "flight",
    [
      t "global ring: bounded, drops counted, resettable" test_ring_bounds;
      t "session: steps tick, latch starts empty" test_session_steps;
      t "benign dump: complete bundle, null first violation"
        test_dump_minimal;
      t "forensic bundle matches the live first corrupting access"
        test_forensic_bundle;
    ] )
