(* Tests for the process image: frames, canaries, shadow stack, arenas,
   globals, vtables, placement primitives. *)

open Pna_layout
module Machine = Pna_machine.Machine
module Event = Pna_machine.Event
module Arena = Pna_machine.Arena
module Config = Pna_defense.Config
module Vmem = Pna_vmem.Vmem

let schema_env () =
  let env = Layout.create_env () in
  List.iter (Layout.define env)
    (Pna_attacks.Schema.base_classes @ Pna_attacks.Schema.virtual_classes);
  env

let mk ?(config = Config.none) () = Machine.create ~config (schema_env ())

let test_globals_layout () =
  let m = mk () in
  let a = Machine.add_global m "stud1" (Ctype.Class "Student") in
  let b = Machine.add_global m "stud2" (Ctype.Class "Student") in
  Alcotest.(check int) "bss start" Machine.bss_base a;
  Alcotest.(check int) "adjacent" (a + 16) b;
  let c = Machine.add_global ~initialized:true m "k" Ctype.Int in
  Alcotest.(check int) "initialized goes to data" Machine.data_base c

let test_global_alignment () =
  let m = mk () in
  let _ = Machine.add_global m "c" Ctype.Char in
  let d = Machine.add_global m "d" Ctype.Double in
  Alcotest.(check int) "8-aligned" 0 (d mod 8)

let test_duplicate_global_rejected () =
  let m = mk () in
  let _ = Machine.add_global m "x" Ctype.Int in
  Alcotest.check_raises "dup"
    (Invalid_argument "Machine.add_global: duplicate global x") (fun () ->
      ignore (Machine.add_global m "x" Ctype.Int))

(* The frame arithmetic the paper's §3.6.1 narrative depends on. *)
let test_frame_slots_no_canary () =
  let m = mk () in
  let main = Machine.push_frame m ~func:"main" ~ret_to:0x8048005 in
  ignore main;
  let f = Machine.push_frame m ~func:"addStudent" ~ret_to:0x8048015 in
  let stud = Machine.alloc_local m ~name:"stud" ~ty:(Ctype.Class "Student") in
  (* ssn[0] = stud+16 aliases the saved fp; ssn[1] = stud+20 the ret slot *)
  Alcotest.(check (option int))
    "stud+16 is saved fp"
    f.Pna_machine.Frame.fr_fp_slot (Some (stud + 16));
  Alcotest.(check int) "stud+20 is ret slot" (stud + 20)
    f.Pna_machine.Frame.fr_ret_slot

let test_frame_slots_with_canary () =
  let m = mk ~config:Config.stackguard () in
  let _ = Machine.push_frame m ~func:"main" ~ret_to:0x8048005 in
  let f = Machine.push_frame m ~func:"addStudent" ~ret_to:0x8048015 in
  let stud = Machine.alloc_local m ~name:"stud" ~ty:(Ctype.Class "Student") in
  (* canary, then fp, then ret: §3.6.1's "ssn[2] overwrites the return
     address" picture *)
  Alcotest.(check (option int))
    "stud+16 is the canary" f.Pna_machine.Frame.fr_canary_slot
    (Some (stud + 16));
  Alcotest.(check (option int))
    "stud+20 is saved fp" f.Pna_machine.Frame.fr_fp_slot (Some (stud + 20));
  Alcotest.(check int) "stud+24 is ret" (stud + 24) f.Pna_machine.Frame.fr_ret_slot

let test_locals_decl_order () =
  let m = mk () in
  let _ = Machine.push_frame m ~func:"f" ~ret_to:0x8048005 in
  let n = Machine.alloc_local m ~name:"n" ~ty:Ctype.Int in
  let stud = Machine.alloc_local m ~name:"stud" ~ty:(Ctype.Class "Student") in
  Alcotest.(check bool) "earlier decl sits higher" true (n > stud);
  (match Machine.lookup_var m "n" with
  | Some (addr, ty) ->
    Alcotest.(check int) "lookup addr" n addr;
    Alcotest.(check bool) "lookup type" true (ty = Ctype.Int)
  | None -> Alcotest.fail "lookup failed")

let test_return_normal () =
  let m = mk () in
  let _ = Machine.push_frame m ~func:"f" ~ret_to:0x8048005 in
  match Machine.pop_frame m with
  | Machine.Returned -> ()
  | Machine.Hijacked _ -> Alcotest.fail "spurious hijack"

let test_return_hijack_detected () =
  let m = mk () in
  let f = Machine.push_frame m ~func:"f" ~ret_to:0x8048005 in
  Vmem.write_u32 ~taint:true (Machine.mem m) f.Pna_machine.Frame.fr_ret_slot 0xdead;
  (match Machine.pop_frame m with
  | Machine.Hijacked { target; tainted; _ } ->
    Alcotest.(check int) "target" 0xdead target;
    Alcotest.(check bool) "tainted" true tainted
  | Machine.Returned -> Alcotest.fail "hijack missed");
  Alcotest.(check bool) "event emitted" true
    (List.exists
       (function Event.Return_hijacked _ -> true | _ -> false)
       (Machine.events m))

let test_canary_smash_detected () =
  let m = mk ~config:Config.stackguard () in
  let f = Machine.push_frame m ~func:"f" ~ret_to:0x8048005 in
  (match f.Pna_machine.Frame.fr_canary_slot with
  | Some slot -> Vmem.write_u32 (Machine.mem m) slot 0x41414141
  | None -> Alcotest.fail "no canary slot");
  match Machine.pop_frame m with
  | _ -> Alcotest.fail "smash undetected"
  | exception Event.Security_stop (Event.Canary_smashed _) -> ()

let test_canary_intact_selective () =
  (* the §5.2 bypass at machine level: only the ret slot changes *)
  let m = mk ~config:Config.stackguard () in
  let f = Machine.push_frame m ~func:"f" ~ret_to:0x8048005 in
  Vmem.write_u32 (Machine.mem m) f.Pna_machine.Frame.fr_ret_slot 0x8048010;
  match Machine.pop_frame m with
  | Machine.Hijacked _ -> ()
  | Machine.Returned -> Alcotest.fail "hijack missed"

let test_shadow_stack_blocks () =
  let m = mk ~config:Config.shadow_stack () in
  let f = Machine.push_frame m ~func:"f" ~ret_to:0x8048005 in
  Vmem.write_u32 (Machine.mem m) f.Pna_machine.Frame.fr_ret_slot 0xdead;
  match Machine.pop_frame m with
  | _ -> Alcotest.fail "shadow stack missed"
  | exception Event.Security_stop (Event.Shadow_stack_blocked _) -> ()

let test_fp_corruption_event () =
  let m = mk () in
  let f = Machine.push_frame m ~func:"f" ~ret_to:0x8048005 in
  (match f.Pna_machine.Frame.fr_fp_slot with
  | Some slot -> Vmem.write_u32 (Machine.mem m) slot 0x1234
  | None -> Alcotest.fail "no fp slot");
  (match Machine.pop_frame m with
  | Machine.Returned -> ()
  | Machine.Hijacked _ -> Alcotest.fail "ret untouched");
  Alcotest.(check bool) "fp event" true
    (List.exists
       (function Event.Frame_pointer_corrupted _ -> true | _ -> false)
       (Machine.events m))

let test_sp_restored () =
  let m = mk () in
  let f = Machine.push_frame m ~func:"f" ~ret_to:0x8048005 in
  let _ = Machine.alloc_local m ~name:"x" ~ty:(Ctype.Array (Ctype.Char, 100)) in
  let _ = Machine.pop_frame m in
  let m2 = Machine.push_frame m ~func:"g" ~ret_to:0x8048005 in
  Alcotest.(check int) "frame base reused" f.Pna_machine.Frame.fr_base
    m2.Pna_machine.Frame.fr_base

let test_arena_innermost () =
  let a = Arena.create () in
  Arena.register a ~base:100 ~size:100 ~origin:(Arena.Pool "outer");
  Arena.register a ~base:120 ~size:16 ~origin:(Arena.Global "inner");
  (match Arena.find a 125 with
  | Some r -> Alcotest.(check int) "innermost wins" 16 r.Arena.a_size
  | None -> Alcotest.fail "not found");
  Alcotest.(check (option int)) "remaining from inner" (Some 11)
    (Arena.remaining a 125);
  Alcotest.(check (option int)) "outer covers the rest" (Some 60)
    (Arena.remaining a 140);
  Arena.unregister a ~base:120;
  Alcotest.(check (option int)) "after unregister" (Some 75)
    (Arena.remaining a 125)

let test_placement_records_arena () =
  let m = mk () in
  let g = Machine.add_global m "stud" (Ctype.Class "Student") in
  let _ = Machine.placement_new m ~site:"t" ~addr:g ~size:32 in
  match Machine.events m with
  | [ Event.Placement { arena = Some 16; size = 32; _ } ] -> ()
  | _ -> Alcotest.fail "placement event missing or wrong"

let test_bounds_check_blocks () =
  let m = mk ~config:Config.bounds_check () in
  let g = Machine.add_global m "stud" (Ctype.Class "Student") in
  match Machine.placement_new m ~site:"t" ~addr:g ~size:32 with
  | _ -> Alcotest.fail "bounds check missed"
  | exception Event.Security_stop (Event.Bounds_blocked { arena = 16; placed = 32; _ }) ->
    ()

let test_bounds_check_allows_fit () =
  let m = mk ~config:Config.bounds_check () in
  let g = Machine.add_global m "stud" (Ctype.Class "Student") in
  let p = Machine.placement_new m ~site:"t" ~addr:g ~size:16 in
  Alcotest.(check int) "placed" g p.Machine.p_addr

let test_null_placement_faults () =
  let m = mk () in
  match Machine.placement_new m ~site:"t" ~addr:0 ~size:4 with
  | _ -> Alcotest.fail "null placement allowed"
  | exception Pna_vmem.Fault.Fault Pna_vmem.Fault.Null_placement -> ()

let test_sanitize_wipes_arena () =
  let m = mk ~config:Config.sanitize () in
  let g = Machine.add_global m "pool" (Ctype.Array (Ctype.Char, 32)) in
  Vmem.write_string (Machine.mem m) g "SECRETSECRETSECRETSECRETSECRET!";
  let _ = Machine.placement_new m ~site:"t" ~addr:g ~size:8 in
  Alcotest.(check string) "wiped" (String.make 32 '\000')
    (Vmem.read_bytes (Machine.mem m) g 32)

let test_vtables_emitted () =
  let m = mk () in
  Machine.emit_vtables m;
  match Machine.vtable_addr m "StudentV" with
  | None -> Alcotest.fail "no vtable for StudentV"
  | Some vt ->
    Alcotest.(check (option string)) "reverse lookup" (Some "StudentV")
      (Machine.class_of_vtable m vt);
    let impl = Vmem.read_u32 (Machine.mem m) vt in
    Alcotest.(check (option string)) "slot 0 resolves" (Some "StudentV::getInfo")
      (Machine.symbol_at m impl)

let test_dispatch_ok () =
  let m = mk () in
  Machine.emit_vtables m;
  let g = Machine.add_global m "s" (Ctype.Class "GradStudentV") in
  Machine.install_vptrs m ~addr:g ~cname:"GradStudentV";
  match Machine.dispatch m ~obj_addr:g ~static_class:"StudentV" ~meth:"getInfo" with
  | Machine.Virtual_ok impl ->
    Alcotest.(check string) "derived impl" "GradStudentV::getInfo" impl
  | Machine.Virtual_hijacked _ -> Alcotest.fail "spurious hijack"

let test_dispatch_hijacked () =
  let m = mk () in
  Machine.emit_vtables m;
  let g = Machine.add_global m "s" (Ctype.Class "StudentV") in
  Machine.install_vptrs m ~addr:g ~cname:"StudentV";
  Vmem.write_u32 ~taint:true (Machine.mem m) g 0xdeadbeef;
  match Machine.dispatch m ~obj_addr:g ~static_class:"StudentV" ~meth:"getInfo" with
  | Machine.Virtual_hijacked { tainted; _ } ->
    Alcotest.(check bool) "tainted" true tainted
  | Machine.Virtual_ok _ -> Alcotest.fail "hijack missed"

let test_intern_dedup () =
  let m = mk () in
  let a = Machine.intern_string m "hello" in
  let b = Machine.intern_string m "hello" in
  Alcotest.(check int) "deduplicated" a b;
  let c = Machine.intern_string ~tainted:true m "hello" in
  Alcotest.(check bool) "tainted copies are fresh" true (c <> a);
  Alcotest.(check bool) "tainted marked" true (Vmem.range_tainted (Machine.mem m) c 5)

let test_delete_placed_leaks () =
  let m = mk () in
  let a = Machine.malloc m 32 in
  Machine.delete_placed m a ~placed_size:16;
  Alcotest.(check int) "16 bytes stranded" 16 (Machine.leaked_bytes m)

let test_delete_placed_pool_discipline () =
  let m = mk ~config:Config.pool_discipline () in
  let a = Machine.malloc m 32 in
  Machine.delete_placed m a ~placed_size:16;
  Alcotest.(check int) "no leak" 0 (Machine.leaked_bytes m)

let test_nx_stack_mapping () =
  let m = mk ~config:Config.nx () in
  match Vmem.find_segment (Machine.mem m) (Machine.stack_top - 4) with
  | Some s ->
    Alcotest.(check bool) "stack not executable" false
      s.Pna_vmem.Segment.perm.Pna_vmem.Perm.execute
  | None -> Alcotest.fail "no stack segment"

let test_strict_alignment_faults () =
  let m = mk ~config:Config.strict_align () in
  let g = Machine.add_global m "pool" (Ctype.Array (Ctype.Char, 32)) in
  (* aligned placement is fine *)
  let _ = Machine.placement_new ~align:8 m ~site:"t" ~addr:g ~size:16 in
  match Machine.placement_new ~align:8 m ~site:"t" ~addr:(g + 4) ~size:16 with
  | _ -> Alcotest.fail "misaligned placement tolerated"
  | exception Pna_vmem.Fault.Fault (Pna_vmem.Fault.Misaligned (_, 8)) -> ()

let test_lax_alignment_tolerated () =
  let m = mk () in
  let g = Machine.add_global m "pool" (Ctype.Array (Ctype.Char, 32)) in
  let p = Machine.placement_new ~align:8 m ~site:"t" ~addr:(g + 4) ~size:16 in
  Alcotest.(check int) "placed anyway" (g + 4) p.Machine.p_addr

let test_stack_exhaustion_faults () =
  (* pushing frames past the stack segment hits unmapped memory, like a
     real guard page *)
  let m = mk () in
  match
    for _ = 1 to 100_000 do
      let _ = Machine.push_frame m ~func:"f" ~ret_to:0x8048005 in
      let _ = Machine.alloc_local m ~name:"buf" ~ty:(Ctype.Array (Ctype.Char, 512)) in
      ()
    done
  with
  | () -> Alcotest.fail "stack never exhausted"
  | exception Pna_vmem.Fault.Fault (Pna_vmem.Fault.Unmapped _) -> ()

let test_input_queues () =
  let m = mk () in
  Machine.set_input ~ints:[ 1; 2 ] ~strings:[ "a" ] m;
  Alcotest.(check int) "first" 1 (Machine.next_int m);
  Alcotest.(check int) "second" 2 (Machine.next_int m);
  Alcotest.(check int) "EOF yields 0" 0 (Machine.next_int m);
  Alcotest.(check string) "string" "a" (Machine.next_string m);
  Alcotest.(check string) "EOF yields empty" "" (Machine.next_string m)

(* ---------------- Event: exhaustive constructor coverage ---------------- *)

(* One witness per constructor, with both taint/symbol variants where the
   payload has them. Adding a constructor to Event.t breaks this list via
   the kind check below — keep it in sync. *)
let event_witnesses : (Event.t * string * bool * bool) list =
  (* (event, expected kind, is_blocking, is_hijack) *)
  [
    ( Event.Canary_smashed { func = "f"; expected = 0xdead; found = 0x41414141 },
      "canary_smashed", true, false );
    ( Event.Return_hijacked
        { func = "f"; legit = 0x10; actual = 0x20; symbol = Some "evil"; tainted = true },
      "return_hijacked", false, true );
    ( Event.Return_hijacked
        { func = "g"; legit = 0x10; actual = 0x20; symbol = None; tainted = false },
      "return_hijacked", false, true );
    ( Event.Frame_pointer_corrupted { func = "f"; legit = 0x10; actual = 0x20 },
      "frame_pointer_corrupted", false, false );
    ( Event.Shadow_stack_blocked { func = "f"; actual = 0x20 },
      "shadow_stack_blocked", true, false );
    ( Event.Bounds_blocked { site = "s"; arena = 16; placed = 32 },
      "bounds_blocked", true, false );
    (Event.Nx_blocked { addr = 0x30 }, "nx_blocked", true, false);
    ( Event.Arena_sanitized { addr = 0x40; len = 32 },
      "arena_sanitized", false, false );
    ( Event.Out_of_memory { requested = 64; in_use = 128 },
      "out_of_memory", false, false );
    ( Event.Heap_corrupted { addr = 0x50; detail = "size field" },
      "heap_corrupted", false, false );
    ( Event.Placement { site = "s"; addr = 0x60; size = 16; arena = Some 32 },
      "placement", false, false );
    ( Event.Placement { site = "s"; addr = 0x60; size = 16; arena = None },
      "placement", false, false );
    ( Event.Vptr_hijacked { class_ = "Student"; addr = 0x70; actual = 0x80; tainted = true },
      "vptr_hijacked", false, true );
    ( Event.Fun_ptr_hijacked
        { name = "cmp"; actual = 0x90; symbol = Some "gotcha"; tainted = false },
      "fun_ptr_hijacked", false, true );
  ]

let test_event_exhaustive () =
  (* the witness list covers every constructor exactly once (modulo
     payload variants) *)
  let kinds = List.sort_uniq compare (List.map (fun (_, k, _, _) -> k) event_witnesses) in
  Alcotest.(check int) "all 12 constructors witnessed" 12 (List.length kinds);
  List.iter
    (fun (e, kind, blocking, hijack) ->
      Alcotest.(check string) (kind ^ ": kind") kind (Event.kind e);
      Alcotest.(check bool) (kind ^ ": is_blocking") blocking (Event.is_blocking e);
      Alcotest.(check bool) (kind ^ ": is_hijack") hijack (Event.is_hijack e);
      let s = Event.to_string e in
      Alcotest.(check string) (kind ^ ": pp = to_string") s (Fmt.str "%a" Event.pp e);
      Alcotest.(check bool) (kind ^ ": renders") true (String.length s > 0))
    event_witnesses

let test_event_pp_details () =
  (* spot-check the human-readable strings the harness greps for *)
  let has hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let check e needle =
    Alcotest.(check bool)
      (Fmt.str "%S in %S" needle (Event.to_string e))
      true
      (has (Event.to_string e) needle)
  in
  check (Event.Canary_smashed { func = "f"; expected = 1; found = 2 })
    "stack smashing detected";
  check
    (Event.Return_hijacked
       { func = "f"; legit = 1; actual = 2; symbol = Some "evil"; tainted = true })
    "[tainted]";
  check
    (Event.Return_hijacked
       { func = "f"; legit = 1; actual = 2; symbol = Some "evil"; tainted = true })
    "(= evil)";
  check (Event.Placement { site = "s"; addr = 1; size = 2; arena = Some 3 })
    "arena 3 bytes"

let test_event_json_witnesses () =
  List.iter
    (fun (e, kind, _, _) ->
      let j = Event.to_json e in
      (match Pna_telemetry.Jsonx.member "kind" j with
      | Some (Pna_telemetry.Jsonx.Str k) ->
        Alcotest.(check string) "json kind tag" kind k
      | _ -> Alcotest.fail "missing kind tag");
      match Event.of_json j with
      | Ok e' -> Alcotest.(check bool) (kind ^ ": round trip") true (e = e')
      | Error err -> Alcotest.failf "%s: decode failed: %s" kind err)
    event_witnesses;
  (* decoder rejects junk rather than guessing *)
  List.iter
    (fun j ->
      match Event.of_json j with
      | Error _ -> ()
      | Ok e -> Alcotest.failf "decoded junk as %s" (Event.kind e))
    Pna_telemetry.Jsonx.
      [
        Null;
        Obj [];
        Obj [ ("kind", Str "warp_core_breach") ];
        Obj [ ("kind", Str "nx_blocked") ] (* missing addr *);
        Obj [ ("kind", Str "nx_blocked"); ("addr", Str "not an int") ];
      ]

(* QCheck: of_json is total over to_json output, including through the
   serialized JSONL text. *)
let event_gen =
  let open QCheck.Gen in
  let str = string_size ~gen:(char_range 'a' 'z') (int_range 0 12) in
  let addr = int_range 0 0xffff_ffff in
  let sym = opt str in
  frequency
    [
      (1, map3 (fun func expected found ->
           Event.Canary_smashed { func; expected; found }) str addr addr);
      ( 1,
        map3 (fun func (legit, actual) (symbol, tainted) ->
            Event.Return_hijacked { func; legit; actual; symbol; tainted })
          str (pair addr addr) (pair sym bool) );
      (1, map3 (fun func legit actual ->
           Event.Frame_pointer_corrupted { func; legit; actual }) str addr addr);
      (1, map2 (fun func actual ->
           Event.Shadow_stack_blocked { func; actual }) str addr);
      (1, map3 (fun site arena placed ->
           Event.Bounds_blocked { site; arena; placed }) str small_nat small_nat);
      (1, map (fun addr -> Event.Nx_blocked { addr }) addr);
      (1, map2 (fun addr len -> Event.Arena_sanitized { addr; len }) addr small_nat);
      (1, map2 (fun requested in_use ->
           Event.Out_of_memory { requested; in_use }) small_nat small_nat);
      (1, map2 (fun addr detail -> Event.Heap_corrupted { addr; detail }) addr str);
      ( 1,
        map3 (fun site (addr, size) arena ->
            Event.Placement { site; addr; size; arena })
          str (pair addr small_nat) (opt small_nat) );
      ( 1,
        map3 (fun class_ (addr, actual) tainted ->
            Event.Vptr_hijacked { class_; addr; actual; tainted })
          str (pair addr addr) bool );
      ( 1,
        map3 (fun name actual (symbol, tainted) ->
            Event.Fun_ptr_hijacked { name; actual; symbol; tainted })
          str addr (pair sym bool) );
    ]

let event_arb =
  QCheck.make ~print:Event.to_string event_gen

let prop_event_json_round_trip =
  QCheck.Test.make ~count:500 ~name:"event: JSONL round trip" event_arb
    (fun e ->
      let line = Pna_telemetry.Jsonx.to_string (Event.to_json e) in
      match Pna_telemetry.Jsonx.of_string line with
      | Error _ -> false
      | Ok j -> (
        match Event.of_json j with Ok e' -> e = e' | Error _ -> false))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "machine",
    [
      t "globals: bss vs data, adjacency" test_globals_layout;
      t "globals: alignment" test_global_alignment;
      t "globals: duplicates rejected" test_duplicate_global_rejected;
      t "frame slots (fp, ret)" test_frame_slots_no_canary;
      t "frame slots with canary" test_frame_slots_with_canary;
      t "locals in declaration order" test_locals_decl_order;
      t "normal return" test_return_normal;
      t "return hijack detected + tainted" test_return_hijack_detected;
      t "canary smash detected" test_canary_smash_detected;
      t "canary intact on selective overwrite" test_canary_intact_selective;
      t "shadow stack blocks hijack" test_shadow_stack_blocks;
      t "fp corruption recorded" test_fp_corruption_event;
      t "sp restored after pop" test_sp_restored;
      t "arena: innermost match" test_arena_innermost;
      t "placement records arena size" test_placement_records_arena;
      t "bounds check blocks oversize placement" test_bounds_check_blocks;
      t "bounds check allows exact fit" test_bounds_check_allows_fit;
      t "null placement faults" test_null_placement_faults;
      t "sanitize wipes the arena" test_sanitize_wipes_arena;
      t "vtables emitted into rodata" test_vtables_emitted;
      t "virtual dispatch resolves override" test_dispatch_ok;
      t "virtual dispatch detects hijacked vptr" test_dispatch_hijacked;
      t "string interning dedup + taint" test_intern_dedup;
      t "delete of placed object leaks" test_delete_placed_leaks;
      t "pool discipline frees whole arena" test_delete_placed_pool_discipline;
      t "nx config unmaps execute on stack" test_nx_stack_mapping;
      t "strict alignment faults misaligned placement" test_strict_alignment_faults;
      t "lax machine tolerates misalignment" test_lax_alignment_tolerated;
      t "stack exhaustion faults like a guard page" test_stack_exhaustion_faults;
      t "input queues" test_input_queues;
      t "event: every constructor classified" test_event_exhaustive;
      t "event: rendered details" test_event_pp_details;
      t "event: JSON round trip + junk rejected" test_event_json_witnesses;
      QCheck_alcotest.to_alcotest prop_event_json_round_trip;
    ] )
