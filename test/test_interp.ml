(* Tests for the MiniC++ interpreter: expression/statement semantics,
   calls, constructors, virtual dispatch, builtins, placement new, taint. *)

open Pna_minicpp.Dsl
module Interp = Pna_minicpp.Interp
module Outcome = Pna_minicpp.Outcome
module Machine = Pna_machine.Machine
module Config = Pna_defense.Config
module Schema = Pna_attacks.Schema

(* run a main body; return (outcome, machine) *)
let run_m ?(classes = []) ?(globals = []) ?(funcs = []) ?(ints = [])
    ?(strings = []) body =
  let prog = program ~classes ~globals (funcs @ [ func "main" body ]) in
  let m = Interp.load ~config:Config.none prog in
  Machine.set_input ~ints ~strings m;
  (Interp.run m prog ~entry:"main", m)

let run ?classes ?globals ?funcs ?ints ?strings body =
  fst (run_m ?classes ?globals ?funcs ?ints ?strings body)

(* run and return the value of global "r" (declared int) *)
let result ?classes ?(globals = []) ?funcs ?ints ?strings body =
  let o, m =
    run_m ?classes ~globals:(global "r" int :: globals) ?funcs ?ints ?strings
      body
  in
  match o.Outcome.status with
  | Outcome.Exited _ ->
    Pna_vmem.Vmem.read_i32 (Machine.mem m) (Machine.global_addr_exn m "r")
  | st -> Alcotest.failf "did not exit normally: %a" Outcome.pp_status st

let check_exit ?(code = 0) name (o : Outcome.t) =
  match o.Outcome.status with
  | Outcome.Exited c -> Alcotest.(check int) name code c
  | st -> Alcotest.failf "%s: %a" name Outcome.pp_status st

let test_arith () =
  Alcotest.(check int) "arith" 17
    (result [ set (v "r") ((i 3 *: i 4) +: (i 10 /: i 2)) ]);
  Alcotest.(check int) "mod" 2 (result [ set (v "r") (i 17 %: i 5) ]);
  Alcotest.(check int) "neg" (-5) (result [ set (v "r") (neg (i 5)) ])

let test_div_by_zero_crashes () =
  let o = run [ set (v "r") (i 1 /: i 0) ] ~globals:[ global "r" int ] in
  match o.Outcome.status with
  | Outcome.Crashed msg ->
    Alcotest.(check bool) "sigfpe" true
      (String.length msg >= 6 && String.sub msg 0 6 = "SIGFPE")
  | st -> Alcotest.failf "expected crash, got %a" Outcome.pp_status st

let test_comparisons () =
  Alcotest.(check int) "lt" 1 (result [ set (v "r") (i 2 <: i 3) ]);
  Alcotest.(check int) "ge" 0 (result [ set (v "r") (i 2 >=: i 3) ]);
  Alcotest.(check int) "eq" 1 (result [ set (v "r") (i 7 ==: i 7) ])

let test_signed_wraparound () =
  (* ints are 32-bit: INT_MAX + 1 wraps negative *)
  Alcotest.(check int) "wrap" (-2147483648)
    (result [ set (v "r") (i 2147483647 +: i 1) ])

let test_unsigned_semantics () =
  (* the paper's §1 motivation: a decremented unsigned looks huge *)
  Alcotest.(check int) "unsigned -1 is big" 1
    (result
       [
         decli "n" uint (i 0);
         set (v "n") (v "n" -: i 1);
         set (v "r") (v "n" >: i 1000000);
       ])

let test_short_circuit () =
  (* the rhs would crash; && must not evaluate it *)
  Alcotest.(check int) "and shortcuts" 0
    (result [ set (v "r") (i 0 &&: (i 1 /: i 0)) ]);
  Alcotest.(check int) "or shortcuts" 1
    (result [ set (v "r") (i 1 ||: (i 1 /: i 0)) ])

let test_logical_strict_eval_unreachable () =
  (* && and || are lowered to short-circuit control flow before operand
     evaluation; the strict-evaluation arm of the binop table is a
     classified [Internal_error], not an untyped assert. Pin it
     unreachable from every catalogue listing — both twins — and from
     logical operators in non-condition expression positions. *)
  let module Driver = Pna_attacks.Driver in
  let module Catalog = Pna_attacks.Catalog in
  let no_internal id (o : Outcome.t) =
    match o.Outcome.status with
    | Outcome.Internal_error msg ->
      Alcotest.failf "%s reached the simulator-bug arm: %s" id msg
    | _ -> ()
  in
  List.iter
    (fun (a : Catalog.t) ->
      no_internal a.Catalog.id (Driver.run a).Driver.outcome;
      match Driver.run_hardened a with
      | Some (o, _, _) -> no_internal (a.Catalog.id ^ "+hardened") o
      | None -> ())
    Pna_attacks.All.attacks;
  Alcotest.(check int) "&& as a call argument" 1
    (result
       ~funcs:[ func "id" ~params:[ ("x", int) ] ~ret:int [ ret (v "x") ] ]
       [ set (v "r") (call "id" [ i 1 &&: i 2 ]) ]);
  Alcotest.(check int) "|| nested under arithmetic" 3
    (result [ set (v "r") ((i 0 ||: i 1) +: (i 1 &&: i 2) +: i 1) ])

let test_preinc () =
  Alcotest.(check int) "++x twice" 2
    (result [ decli "x" int (i 0); expr (incr (v "x")); set (v "r") (incr (v "x")) ])

let test_while_loop () =
  Alcotest.(check int) "sum 1..10" 55
    (result
       [
         decli "s" int (i 0);
         decli "j" int (i 0);
         while_ (incr (v "j") <=: i 10) [ set (v "s") (v "s" +: v "j") ];
         set (v "r") (v "s");
       ])

let test_for_loop () =
  Alcotest.(check int) "for" 10
    (result
       [
         for_ (decli "j" int (i 0)) (v "j" <: i 5) (set (v "j") (v "j" +: i 1))
           [ set (v "r") (v "r" +: i 2) ];
       ])

let test_if_else () =
  Alcotest.(check int) "else branch" 9
    (result [ if_ (i 0) [ set (v "r") (i 1) ] [ set (v "r") (i 9) ] ])

let test_function_call_and_return () =
  let funcs = [ func "twice" ~params:[ ("x", int) ] ~ret:int [ ret (v "x" *: i 2) ] ] in
  Alcotest.(check int) "call" 14 (result ~funcs [ set (v "r") (call "twice" [ i 7 ]) ])

let test_recursion () =
  let funcs =
    [
      func "fact" ~params:[ ("n", int) ] ~ret:int
        [
          if_ (v "n" <=: i 1) [ ret (i 1) ]
            [ ret (v "n" *: call "fact" [ v "n" -: i 1 ]) ];
        ];
    ]
  in
  Alcotest.(check int) "6!" 720 (result ~funcs [ set (v "r") (call "fact" [ i 6 ]) ])

let test_runaway_recursion_crashes () =
  let funcs = [ func "f" [ expr (call "f" []) ] ] in
  let o = run ~funcs [ expr (call "f" []) ] in
  match o.Outcome.status with
  | Outcome.Crashed _ -> ()
  | st -> Alcotest.failf "expected crash, got %a" Outcome.pp_status st

let test_main_return_code () =
  check_exit ~code:42 "exit code" (run [ ret (i 42) ])

let test_exit_builtin () =
  check_exit ~code:3 "exit()" (run [ expr (call "exit" [ i 3 ]); ret (i 0) ])

let test_timeout () =
  let prog = program [ func "main" [ while_ (i 1) [] ] ] in
  let m = Interp.load ~config:Config.none prog in
  let o = Interp.run ~max_steps:1000 m prog ~entry:"main" in
  match o.Outcome.status with
  | Outcome.Timeout _ -> ()
  | st -> Alcotest.failf "expected timeout, got %a" Outcome.pp_status st

let test_pointers () =
  Alcotest.(check int) "deref(&x)" 5
    (result
       [
         decli "x" int (i 5);
         decli "p" (ptr int) (addr (v "x"));
         set (v "r") (deref (v "p"));
       ]);
  Alcotest.(check int) "write through pointer" 9
    (result
       [
         decli "x" int (i 5);
         decli "p" (ptr int) (addr (v "x"));
         set (deref (v "p")) (i 9);
         set (v "r") (v "x");
       ])

let test_pointer_arith () =
  Alcotest.(check int) "p+2 over ints" 30
    (result
       [
         decl "a" (int_arr 4);
         set (idx (v "a") (i 2)) (i 30);
         decli "p" (ptr int) (v "a");
         set (v "r") (deref (v "p" +: i 2));
       ])

let test_array_index_unchecked () =
  (* a[4] on int a[4]: no bounds check — lands on the neighbouring local *)
  Alcotest.(check int) "no bounds check" 77
    (result
       [
         decli "victim" int (i 0);
         decl "a" (int_arr 4);
         set (idx (v "a") (i 4)) (i 77);
         set (v "r") (v "victim");
       ])

let test_sizeof () =
  Alcotest.(check int) "sizeof(GradStudent)" 32
    (result ~classes:Schema.base_classes
       [ set (v "r") (sizeof (cls "GradStudent")) ])

let test_cast_truncates () =
  Alcotest.(check int) "char cast" 0x44
    (result
       [
         decli "x" int (i 0x1144);
         decli "c" char (cast char (v "x"));
         set (v "r") (v "c");
       ])

let test_double_field () =
  let o, m =
    run_m ~classes:Schema.base_classes
      ~funcs:Schema.base_funcs
      ~globals:[ global "s" (cls "Student"); global "out" double ]
      [
        expr (pnew (addr (v "s")) (cls "Student") [ fl 3.25; i 2009; i 1 ]);
        set (v "out") (fld (v "s") "gpa");
      ]
  in
  check_exit "ran" o;
  Alcotest.(check (float 0.0)) "double roundtrip" 3.25
    (Pna_vmem.Vmem.read_f64 (Machine.mem m) (Machine.global_addr_exn m "out"))

let test_ctor_runs () =
  let o, m =
    run_m ~classes:Schema.base_classes ~funcs:Schema.base_funcs
      ~globals:[ global "out" int ]
      [
        obj "s" "Student" [ fl 4.0; i 2011; i 2 ];
        set (v "out") (fld (v "s") "year");
      ]
  in
  check_exit "ran" o;
  Alcotest.(check int) "ctor set year" 2011
    (Pna_vmem.Vmem.read_i32 (Machine.mem m) (Machine.global_addr_exn m "out"))

let test_copy_ctor_shallow () =
  let o, m =
    run_m ~classes:Schema.base_classes ~funcs:Schema.base_funcs
      ~globals:[ global "out" int ]
      [
        decli "a" (ptr (cls "GradStudent")) (new_ (cls "GradStudent") []);
        expr (mcall (v "a") "setSSN" [ i 111; i 222; i 333 ]);
        decli "b" (ptr (cls "GradStudent")) (new_ (cls "GradStudent") [ v "a" ]);
        set (v "out") (idx (arrow (v "b") "ssn") (i 2));
      ]
  in
  check_exit "ran" o;
  Alcotest.(check int) "memberwise copy" 333
    (Pna_vmem.Vmem.read_i32 (Machine.mem m) (Machine.global_addr_exn m "out"))

let test_virtual_dispatch_derived () =
  (* a GradStudentV seen through a StudentV* dispatches to the override *)
  let funcs =
    Schema.virtual_funcs
    @ [
        func "probe" ~params:[ ("s", ptr (cls "StudentV")) ] ~ret:int
          [ ret (mcall (v "s") "getInfo" []) ];
      ]
  in
  (* getInfo impls return 1; make the derived one return 2 to observe *)
  let funcs =
    List.map
      (fun f ->
        if f.Pna_minicpp.Ast.fn_name = "GradStudentV::getInfo" then
          func "GradStudentV::getInfo" ~params:[ ("this", ptr void) ] ~ret:int
            [ ret (i 2) ]
        else f)
      funcs
  in
  Alcotest.(check int) "derived impl ran" 2
    (result ~classes:Schema.virtual_classes ~funcs
       [
         decli "g" (ptr (cls "GradStudentV")) (new_ (cls "GradStudentV") []);
         set (v "r") (call "probe" [ v "g" ]);
       ])

let test_strlen_strcpy () =
  Alcotest.(check int) "strlen" 5
    (result [ set (v "r") (call "strlen" [ str "hello" ]) ]);
  let o, m =
    run_m
      ~globals:[ global "buf" (char_arr 16) ]
      [ expr (call "strcpy" [ v "buf"; str "hi" ]) ]
  in
  check_exit "ran" o;
  Alcotest.(check string) "copied with NUL" "hi\000"
    (Pna_vmem.Vmem.read_bytes (Machine.mem m) (Machine.global_addr_exn m "buf") 3)

let test_strncpy_pads () =
  let o, m =
    run_m
      ~globals:[ global "buf" (char_arr 8) ]
      [
        expr (call "memset" [ v "buf"; i 0x2a; i 8 ]);
        expr (call "strncpy" [ v "buf"; str "ab"; i 6 ]);
      ]
  in
  check_exit "ran" o;
  Alcotest.(check string) "NUL padding to n, tail untouched" "ab\000\000\000\000**"
    (Pna_vmem.Vmem.read_bytes (Machine.mem m) (Machine.global_addr_exn m "buf") 8)

let test_memcpy_memset () =
  let o, m =
    run_m
      ~globals:[ global "a" (char_arr 8); global "b" (char_arr 8) ]
      [
        expr (call "memset" [ v "a"; i 0x41; i 8 ]);
        expr (call "memcpy" [ v "b"; v "a"; i 4 ]);
      ]
  in
  check_exit "ran" o;
  Alcotest.(check string) "memcpy" "AAAA\000\000\000\000"
    (Pna_vmem.Vmem.read_bytes (Machine.mem m) (Machine.global_addr_exn m "b") 8)

let test_cout () =
  let o = run [ cout [ str "x="; i 42 ] ] in
  Alcotest.(check (list string)) "output" [ "x="; "42" ] o.Outcome.output

let test_cin_taints () =
  let o, m =
    run_m ~globals:[ global "g" int ] ~ints:[ 7 ] [ set (v "g") cin ]
  in
  check_exit "ran" o;
  let addr = Machine.global_addr_exn m "g" in
  Alcotest.(check int) "value" 7 (Pna_vmem.Vmem.read_i32 (Machine.mem m) addr);
  Alcotest.(check bool) "tainted" true
    (Pna_vmem.Vmem.range_tainted (Machine.mem m) addr 4)

let test_taint_through_arith () =
  let o, m =
    run_m ~globals:[ global "g" int ] ~ints:[ 5 ]
      [ decli "x" int cin; set (v "g") ((v "x" *: i 4) +: i 1) ]
  in
  check_exit "ran" o;
  Alcotest.(check bool) "derived value tainted" true
    (Pna_vmem.Vmem.range_tainted (Machine.mem m)
       (Machine.global_addr_exn m "g") 4)

let test_heap_new_delete () =
  let o, m =
    run_m ~classes:Schema.base_classes ~funcs:Schema.base_funcs
      [
        decli "p" (ptr (cls "GradStudent")) (new_ (cls "GradStudent") []);
        delete (v "p");
      ]
  in
  check_exit "ran" o;
  Alcotest.(check int) "all freed" 0 (Machine.heap_stats m).Pna_machine.Heap.in_use

let test_new_array_negative_crashes () =
  let o = run ~ints:[ -3 ] [ decli "p" char_p (new_arr char cin) ] in
  match o.Outcome.status with
  | Outcome.Crashed _ -> ()
  | st -> Alcotest.failf "expected bad_alloc crash, got %a" Outcome.pp_status st

let test_placement_returns_target () =
  let o, m =
    run_m ~classes:Schema.base_classes ~funcs:Schema.base_funcs
      ~globals:[ global "s" (cls "Student"); global "out" (ptr void) ]
      [
        decli "p" (ptr (cls "Student")) (pnew (addr (v "s")) (cls "Student") []);
        set (v "out") (v "p");
      ]
  in
  check_exit "ran" o;
  Alcotest.(check int) "placement returns its address"
    (Machine.global_addr_exn m "s")
    (Pna_vmem.Vmem.read_u32 (Machine.mem m) (Machine.global_addr_exn m "out"))

let test_placement_no_bounds_check () =
  (* the defining property: a 32-byte object placed in 16 bytes, silently *)
  let o, _ =
    run_m ~classes:Schema.base_classes ~funcs:Schema.base_funcs
      ~globals:[ global "s" (cls "Student") ]
      [ expr (pnew (addr (v "s")) (cls "GradStudent") []) ]
  in
  check_exit "no complaint" o

let test_null_placement_crashes () =
  let o =
    run ~classes:Schema.base_classes ~funcs:Schema.base_funcs
      ~globals:[ global "p" (ptr (cls "Student")) ]
      [ expr (pnew (v "p") (cls "Student") []) ]
  in
  match o.Outcome.status with
  | Outcome.Crashed _ -> ()
  | st -> Alcotest.failf "expected crash, got %a" Outcome.pp_status st

let test_class_assignment_copies_bytes () =
  let o, m =
    run_m ~classes:Schema.base_classes ~funcs:Schema.base_funcs
      ~globals:[ global "a" (cls "Student"); global "b" (cls "Student"); global "out" int ]
      [
        expr (pnew (addr (v "a")) (cls "Student") [ fl 2.5; i 2001; i 1 ]);
        set (v "b") (v "a");
        set (v "out") (fld (v "b") "year");
      ]
  in
  check_exit "ran" o;
  Alcotest.(check int) "copied" 2001
    (Pna_vmem.Vmem.read_i32 (Machine.mem m) (Machine.global_addr_exn m "out"))

let test_global_initializers () =
  Alcotest.(check int) "Ival global" 8
    (result ~globals:[ global "k" ~init:(Ival 8) int ] [ set (v "r") (v "k") ])

let test_string_global_initializer () =
  let o, m =
    run_m ~globals:[ global "s" ~init:(Sval "pw:x") (char_arr 8) ] []
  in
  check_exit "ran" o;
  Alcotest.(check string) "initialized" "pw:x"
    (Pna_vmem.Vmem.read_bytes (Machine.mem m) (Machine.global_addr_exn m "s") 4)

let test_method_static_dispatch () =
  Alcotest.(check int) "plain method via base-class search" 99
    (result ~classes:Schema.base_classes
       ~funcs:
         (Schema.base_funcs
         @ [
             func "probe" ~params:[ ("g", ptr (cls "GradStudent")) ] ~ret:int
               [
                 expr (mcall (v "g") "setSSN" [ i 99; i 0; i 0 ]);
                 ret (idx (arrow (v "g") "ssn") (i 0));
               ];
           ])
       [
         decli "g" (ptr (cls "GradStudent")) (new_ (cls "GradStudent") []);
         set (v "r") (call "probe" [ v "g" ]);
       ])

(* ---- differential testing: random expressions vs a reference ---- *)

(* random arithmetic over Int literals; division avoided by construction *)
let gen_arith =
  let open QCheck.Gen in
  sized_size (int_range 0 5) @@ fix (fun self n ->
      if n = 0 then map (fun v -> Int v) (int_range (-1000) 1000)
      else
        frequency
          [
            (1, map (fun v -> Int v) (int_range (-1000) 1000));
            ( 4,
              map3
                (fun op a b -> Bin (op, a, b))
                (oneofl [ Add; Sub; Mul ])
                (self (n / 2))
                (self (n / 2)) );
            (1, map (fun e -> Un (Neg, e)) (self (n - 1)));
            ( 2,
              map3
                (fun c a b -> Bin ((if c then Lt else Gt), a, b))
                bool (self (n / 2)) (self (n / 2)) );
          ])

(* reference semantics: 32-bit wrapping signed arithmetic *)
let rec ref_eval (e : Pna_minicpp.Ast.expr) =
  let wrap v = Pna_vmem.Vmem.to_signed32 (v land 0xffffffff) in
  match e with
  | Int v -> wrap v
  | Un (Neg, a) -> wrap (-ref_eval a)
  | Bin (Add, a, b) -> wrap (ref_eval a + ref_eval b)
  | Bin (Sub, a, b) -> wrap (ref_eval a - ref_eval b)
  | Bin (Mul, a, b) -> wrap (ref_eval a * ref_eval b)
  | Bin (Lt, a, b) -> if ref_eval a < ref_eval b then 1 else 0
  | Bin (Gt, a, b) -> if ref_eval a > ref_eval b then 1 else 0
  | _ -> assert false

let rec expr_print (e : Pna_minicpp.Ast.expr) =
  match e with
  | Int v -> string_of_int v
  | Un (Neg, a) -> "-(" ^ expr_print a ^ ")"
  | Bin (op, a, b) ->
    let o =
      match op with
      | Add -> "+" | Sub -> "-" | Mul -> "*" | Lt -> "<" | Gt -> ">"
      | _ -> "?"
    in
    "(" ^ expr_print a ^ o ^ expr_print b ^ ")"
  | _ -> "?"

let prop_interp_matches_reference =
  QCheck.Test.make ~count:300
    ~name:"interp: arithmetic agrees with the 32-bit reference"
    (QCheck.make ~print:expr_print gen_arith)
    (fun e ->
      result [ set (v "r") e ] = ref_eval e)

let prop_expressions_deterministic =
  QCheck.Test.make ~count:100 ~name:"interp: evaluation is deterministic"
    (QCheck.make ~print:expr_print gen_arith)
    (fun e -> result [ set (v "r") e ] = result [ set (v "r") e ])

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "interp",
    [
      t "arithmetic" test_arith;
      t "division by zero crashes" test_div_by_zero_crashes;
      t "comparisons" test_comparisons;
      t "32-bit signed wraparound" test_signed_wraparound;
      t "unsigned underflow is huge" test_unsigned_semantics;
      t "&&/|| short-circuit" test_short_circuit;
      t "&&/|| strict-eval arm unreachable" test_logical_strict_eval_unreachable;
      t "pre-increment" test_preinc;
      t "while loop" test_while_loop;
      t "for loop" test_for_loop;
      t "if/else" test_if_else;
      t "function call and return" test_function_call_and_return;
      t "recursion" test_recursion;
      t "runaway recursion crashes" test_runaway_recursion_crashes;
      t "main return code" test_main_return_code;
      t "exit builtin" test_exit_builtin;
      t "step budget timeout" test_timeout;
      t "pointers: deref read/write" test_pointers;
      t "pointer arithmetic scales" test_pointer_arith;
      t "array indexing unchecked" test_array_index_unchecked;
      t "sizeof" test_sizeof;
      t "cast truncates" test_cast_truncates;
      t "double fields" test_double_field;
      t "constructors run" test_ctor_runs;
      t "implicit copy constructor is shallow" test_copy_ctor_shallow;
      t "virtual dispatch picks override" test_virtual_dispatch_derived;
      t "strlen/strcpy" test_strlen_strcpy;
      t "strncpy pads with NULs" test_strncpy_pads;
      t "memcpy/memset" test_memcpy_memset;
      t "cout" test_cout;
      t "cin taints values" test_cin_taints;
      t "taint flows through arithmetic" test_taint_through_arith;
      t "heap new/delete" test_heap_new_delete;
      t "new[] with negative size crashes" test_new_array_negative_crashes;
      t "placement returns target address" test_placement_returns_target;
      t "placement new performs no bounds check" test_placement_no_bounds_check;
      t "placement at null crashes" test_null_placement_crashes;
      t "class assignment copies bytes" test_class_assignment_copies_bytes;
      t "global int initializers" test_global_initializers;
      t "global string initializers" test_string_global_initializer;
      t "non-virtual methods dispatch statically" test_method_static_dispatch;
      QCheck_alcotest.to_alcotest prop_interp_matches_reference;
      QCheck_alcotest.to_alcotest prop_expressions_deterministic;
    ] )
