(** The scenario service and the snapshot substrate under it: QCheck
    properties for Vmem snapshot/restore, machine-rewind determinism, the
    domain pool, the memo cache and the batch/sequential equivalence the
    whole layer is built on. *)

module Vmem = Pna_vmem.Vmem
module Segment = Pna_vmem.Segment
module Perm = Pna_vmem.Perm
module Machine = Pna_machine.Machine
module Catalog = Pna_attacks.Catalog
module Driver = Pna_attacks.Driver
module All = Pna_attacks.All
module Config = Pna_defense.Config
module Outcome = Pna_minicpp.Outcome
module Plan = Pna_chaos.Plan
module Pool = Pna_service.Pool
module Service = Pna_service.Service

(* ------------------------------------------------------------------ *)
(* Vmem snapshot/restore                                               *)

let data_base = 0x1000
let data_size = 0x200
let heap_base = 0x4000
let heap_size = 0x100

let mk_vmem () =
  let m = Vmem.create () in
  ignore (Vmem.map m ~kind:Segment.Data ~base:data_base ~size:data_size ~perm:Perm.rw);
  ignore (Vmem.map m ~kind:Segment.Heap ~base:heap_base ~size:heap_size ~perm:Perm.rw);
  m

(* Observable state of the whole space: bytes, taint, trace, segments. *)
let observe m =
  let seg_bytes (s : Segment.t) =
    List.init s.Segment.size (fun i ->
        (s.Segment.base + i, Vmem.read_u8 m (s.Segment.base + i),
         Vmem.taint_of m (s.Segment.base + i)))
  in
  let segs = Vmem.segments m in
  ( List.map (fun (s : Segment.t) -> (s.Segment.kind, s.Segment.base, s.Segment.size)) segs,
    List.concat_map seg_bytes segs,
    Vmem.trace m )

(* An arbitrary mutation step against the space. *)
type mutation =
  | Write of int * int * bool
  | Fill of int * int * int
  | Blit of int * int * int
  | Taint of int * int * bool

let apply_mutation m = function
  | Write (addr, v, taint) -> Vmem.write_u8 ~taint m addr v
  | Fill (dst, len, v) -> Vmem.fill m ~dst ~len v
  | Blit (src, dst, len) -> Vmem.blit m ~src ~dst ~len
  | Taint (addr, len, on) -> Vmem.set_taint m addr len on

let mutation_gen =
  let open QCheck.Gen in
  let addr_in base size margin =
    map (fun off -> base + off) (int_bound (size - 1 - margin))
  in
  let any_addr margin =
    oneof [ addr_in data_base data_size margin; addr_in heap_base heap_size margin ]
  in
  oneof
    [
      map3 (fun a v t -> Write (a, v, t)) (any_addr 0) (int_bound 255) bool;
      map3 (fun a len v -> Fill (a, len, v)) (addr_in data_base data_size 32)
        (int_bound 31) (int_bound 255);
      map3 (fun src dst len -> Blit (src, dst, len))
        (addr_in data_base data_size 16) (addr_in heap_base heap_size 16)
        (int_bound 15);
      map3 (fun a len on -> Taint (a, len, on)) (addr_in heap_base heap_size 8)
        (int_bound 8) bool;
    ]

let mutation_print = function
  | Write (a, v, t) -> Printf.sprintf "write u8 0x%x <- %d taint:%b" a v t
  | Fill (a, l, v) -> Printf.sprintf "fill 0x%x+%d <- %d" a l v
  | Blit (s, d, l) -> Printf.sprintf "blit 0x%x -> 0x%x len %d" s d l
  | Taint (a, l, on) -> Printf.sprintf "taint 0x%x+%d <- %b" a l on

(* snapshot -> arbitrary writes -> restore is the identity on the whole
   observable space: contents, taint, write records, segment list. *)
let prop_snapshot_roundtrip =
  QCheck.Test.make ~count:100 ~name:"snapshot/restore is the identity"
    QCheck.(
      make ~print:(fun l -> String.concat "; " (List.map mutation_print l))
        (Gen.list_size (Gen.int_range 0 40) mutation_gen))
    (fun mutations ->
      let m = mk_vmem () in
      Vmem.enable_trace m;
      (* a non-trivial pre-state, including pre-existing trace records *)
      Vmem.write_string ~taint:true m (data_base + 8) "pre-state";
      Vmem.fill m ~dst:heap_base ~len:16 0xab;
      let before = observe m in
      let snap = Vmem.snapshot m in
      List.iter (apply_mutation m) mutations;
      (* also map a segment after the snapshot: restore must unmap it *)
      ignore (Vmem.map m ~kind:Segment.Mmap ~base:0x9000 ~size:0x40 ~perm:Perm.rw);
      Vmem.restore m snap;
      observe m = before)

let test_snapshot_restores_trace_state () =
  let m = mk_vmem () in
  (* trace disabled at snapshot time; enabled + populated afterwards *)
  let snap = Vmem.snapshot m in
  Vmem.enable_trace m;
  Vmem.write_u8 ~tag:"post" m data_base 1;
  Alcotest.(check int) "trace recorded" 1 (List.length (Vmem.trace m));
  Vmem.restore m snap;
  Alcotest.(check int) "trace rewound" 0 (List.length (Vmem.trace m));
  Vmem.write_u8 ~tag:"post2" m data_base 2;
  Alcotest.(check int) "tracing disabled again" 0 (List.length (Vmem.trace m))

let test_snapshot_restores_perms () =
  let m = mk_vmem () in
  let snap = Vmem.snapshot m in
  let seg = Option.get (Vmem.find_segment m data_base) in
  seg.Segment.perm <- Perm.ro;
  (match Vmem.write_u8 m data_base 1 with
  | () -> Alcotest.fail "write through ro segment should fault"
  | exception Pna_vmem.Fault.Fault _ -> ());
  Vmem.restore m snap;
  Vmem.write_u8 m data_base 1;
  Alcotest.(check int) "writable again" 1 (Vmem.read_u8 m data_base)

(* ------------------------------------------------------------------ *)
(* Prepared machines: rewind == rebuild                                *)

let result_fingerprint (r : Driver.result) =
  ( r.Driver.attack.Catalog.id,
    r.Driver.config.Config.name,
    Fmt.str "%a" Outcome.pp_status r.Driver.outcome.Outcome.status,
    r.Driver.verdict.Catalog.success,
    r.Driver.verdict.Catalog.detail,
    List.map Pna_machine.Event.to_string r.Driver.outcome.Outcome.events,
    r.Driver.outcome.Outcome.output,
    r.Driver.outcome.Outcome.steps )

(* Every catalogue attack, under a defended and an undefended config:
   running a prepared scenario twice gives exactly the fresh-load result
   each time — the machine rewind is perfect. The budget caps the
   deliberately-slow DoS/OOM entries; both sides run under the same cap,
   so the comparison stays exact. *)
let budget = 60_000

let test_prepared_equals_fresh () =
  List.iter
    (fun config ->
      List.iter
        (fun (a : Catalog.t) ->
          let fresh =
            result_fingerprint (Driver.run ~config ~max_steps:budget a)
          in
          let p = Driver.prepare ~config a in
          for i = 1 to 2 do
            let again =
              result_fingerprint (Driver.run_prepared ~max_steps:budget p)
            in
            if again <> fresh then
              Alcotest.failf "%s under %s: rewound run %d diverged"
                a.Catalog.id config.Config.name i
          done)
        All.attacks)
    [ Config.none; Config.full ]

let test_supervised_reload_equals_fresh () =
  let a = Pna_attacks.L13_stack_ret.attack in
  let config = Config.stackguard in
  List.iter
    (fun seed ->
      let plan = Plan.generate ~seed () in
      let fresh = Driver.supervise ~config ~plan a in
      let p = Driver.prepare ~config a in
      let rewound =
        Driver.supervise ~config ~reload:(fun () -> Driver.reset p) ~plan a
      in
      Alcotest.(check string)
        (Fmt.str "seed %d supervised equal" seed)
        (Fmt.str "%a" Driver.pp_supervised fresh)
        (Fmt.str "%a" Driver.pp_supervised rewound))
    [ 1; 2; 3; 4; 5 ]

let test_run_max_steps_deadline () =
  (* the benign pool server cannot finish 64 requests in 50 steps: the
     new ?max_steps on Driver.run must surface the timeout *)
  let r = Driver.run ~max_steps:50 Pna.Experiments.benign_pool in
  match r.Driver.outcome.Outcome.status with
  | Outcome.Timeout _ -> ()
  | st ->
    Alcotest.failf "expected timeout under 50-step deadline, got %a"
      Outcome.pp_status st

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_runs_all_jobs () =
  let pool = Pool.create ~jobs:4 ~queue_cap:2 ~mk_ctx:(fun () -> ()) () in
  let futures = List.init 50 (fun i -> Pool.submit pool (fun () -> i * i)) in
  let results = List.map Pool.await futures in
  Pool.shutdown pool;
  Alcotest.(check (list int)) "all squares, in order"
    (List.init 50 (fun i -> i * i))
    results

let test_pool_propagates_exceptions () =
  let pool = Pool.create ~jobs:2 ~mk_ctx:(fun () -> ()) () in
  let ok = Pool.submit pool (fun () -> 7) in
  let bad = Pool.submit pool (fun () -> failwith "job exploded") in
  Alcotest.(check int) "good job" 7 (Pool.await ok);
  (match Pool.await bad with
  | _ -> Alcotest.fail "expected the job's exception"
  | exception Failure msg -> Alcotest.(check string) "message" "job exploded" msg);
  Pool.shutdown pool

let test_pool_clamp () =
  Alcotest.(check int) "floor" 1 (Pool.clamp_jobs (-3));
  let top = Pool.clamp_jobs max_int in
  Alcotest.(check bool) "ceiling >= 4 and respected" true
    (top >= 4 && Pool.clamp_jobs (top + 1) = top)

let test_pool_rejects_after_shutdown () =
  let pool = Pool.create ~jobs:1 ~mk_ctx:(fun () -> ()) () in
  Pool.shutdown pool;
  match Pool.submit pool (fun () -> ()) with
  | _ -> Alcotest.fail "submit after shutdown should raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Service                                                             *)

let reply_fingerprint (r : Service.reply) =
  (r.Service.r_id, r.Service.r_config, r.Service.r_chaos_seed,
   r.Service.r_status, r.Service.r_success, r.Service.r_detail,
   r.Service.r_attempts)

(* The acceptance property: a 4-way parallel batch over the whole attack
   x defense matrix is verdict-identical to the sequential driver. *)
let test_batch_matches_sequential_driver () =
  (* whole catalogue, a defended and an undefended config; the remaining
     configs are covered by the sequential experiments *)
  let jobs =
    Service.matrix_jobs ~configs:[ Config.none; Config.full ] ~max_steps:budget
      ()
  in
  let sequential =
    List.map
      (fun (j : Service.job) ->
        reply_fingerprint
          (Service.reply_of_result
             (Driver.run ~config:j.Service.j_config ~max_steps:budget
                j.Service.j_attack)))
      jobs
  in
  let svc = Service.create ~jobs:4 () in
  let parallel = List.map reply_fingerprint (Service.run_batch svc jobs) in
  Service.shutdown svc;
  Alcotest.(check int) "one reply per job" (List.length jobs)
    (List.length parallel);
  List.iteri
    (fun i (seq, par) ->
      if seq <> par then
        let id, config, _, _, _, _, _ = seq in
        Alcotest.failf "job %d (%s under %s): parallel reply diverged" i id
          config)
    (List.combine sequential parallel)

let test_batch_chaos_matches_supervise () =
  let a = Pna_attacks.L12_heap.attack in
  let config = Config.none in
  let seeds = [ 11; 12; 13 ] in
  let sequential =
    List.map
      (fun seed ->
        reply_fingerprint
          (Service.reply_of_supervised ~chaos_seed:seed
             (Driver.supervise ~config ~plan:(Plan.generate ~seed ()) a)))
      seeds
  in
  let svc = Service.create ~jobs:2 () in
  let parallel =
    List.map reply_fingerprint
      (Service.run_batch svc
         (List.map (fun seed -> Service.job ~chaos_seed:seed ~config a) seeds))
  in
  Service.shutdown svc;
  Alcotest.(check bool) "supervised replies equal" true (sequential = parallel)

let test_memo_hits_repeated_jobs () =
  (* one worker, so the per-worker prepared cache is observed exactly *)
  let svc = Service.create ~jobs:1 () in
  let j = Service.job ~config:Config.none Pna_attacks.L13_stack_ret.attack in
  let first = Service.exec svc j in
  let repeats = Service.run_batch svc [ j; j; j; j ] in
  let st = Service.stats svc in
  Service.shutdown svc;
  Alcotest.(check bool) "first reply computed" false first.Service.r_cached;
  List.iter
    (fun (r : Service.reply) ->
      Alcotest.(check bool) "repeat served from memo" true r.Service.r_cached;
      Alcotest.(check bool) "verdict preserved" true
        (reply_fingerprint r = reply_fingerprint first))
    repeats;
  Alcotest.(check int) "4 memo hits" 4 st.Service.st_memo_hits;
  Alcotest.(check int) "1 memo miss" 1 st.Service.st_memo_misses;
  Alcotest.(check int) "one image load, many rewinds" 1 st.Service.st_fresh_loads;
  (* exactly one counted rewind, for the single real execution: the
     input hash is computed once at load time, so memo hits do no
     machine work at all *)
  Alcotest.(check int) "hits never touch the machine" 1
    st.Service.st_snapshot_restores

(* The memo cache is bounded: with a cap of 16 over 16 shards each shard
   holds one entry, so a spread of distinct keys must evict. An unbounded
   cache would make multi-day soaks an OOM, so this pins the bound. *)
let test_memo_lru_evicts_at_cap () =
  let svc = Service.create ~jobs:1 ~memo_cap:16 () in
  let job seed =
    Service.job ~chaos_seed:seed ~max_steps:60_000 ~config:Config.none
      Pna_attacks.L13_stack_ret.attack
  in
  let seeds = List.init 24 (fun i -> i + 1) in
  let (_ : Service.reply list) =
    Service.run_batch svc (List.map job seeds)
  in
  let evicted = Service.memo_evictions svc in
  let st = Service.stats svc in
  (* the survivors still serve from memo, evicted keys recompute — and
     both still answer with the same verdict *)
  let again = Service.run_batch svc (List.map job seeds) in
  let st2 = Service.stats svc in
  Service.shutdown svc;
  Alcotest.(check bool) "cap forces evictions" true (evicted > 0);
  Alcotest.(check int) "stats expose the eviction count" evicted
    st.Service.st_memo_evictions;
  Alcotest.(check bool) "some repeats still hit the memo" true
    (st2.Service.st_memo_hits > st.Service.st_memo_hits);
  Alcotest.(check bool) "evicted keys recompute, not fail" true
    (List.for_all (fun (r : Service.reply) -> r.Service.r_status <> "") again)

let test_try_submit_and_notify () =
  let svc = Service.create ~jobs:1 () in
  let notified = Atomic.make 0 in
  let j = Service.job ~config:Config.none Pna_attacks.L13_stack_ret.attack in
  (match
     Service.try_submit ~notify:(fun () -> Atomic.incr notified) svc j
   with
  | None -> Alcotest.fail "try_submit rejected an idle service"
  | Some fut ->
    let r = Pool.await fut in
    Alcotest.(check bool) "reply delivered" true (String.length r.Service.r_id > 0));
  (* notify runs on the worker right after the future is fulfilled, so
     await can return first — give the worker a moment *)
  let deadline = Unix.gettimeofday () +. 5. in
  while Atomic.get notified = 0 && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  Alcotest.(check int) "notify ran once" 1 (Atomic.get notified);
  Service.shutdown svc;
  Alcotest.(check bool) "try_submit after shutdown is None" true
    (Service.try_submit svc j = None)

let test_memo_off_recomputes () =
  let svc = Service.create ~jobs:1 ~memo:false () in
  let j = Service.job ~config:Config.none Pna_attacks.L11_data_bss.attack in
  let a = Service.exec svc j in
  let b = Service.exec svc j in
  let st = Service.stats svc in
  Service.shutdown svc;
  Alcotest.(check bool) "nothing cached" true
    ((not a.Service.r_cached) && not b.Service.r_cached);
  Alcotest.(check int) "no hits" 0 st.Service.st_memo_hits;
  Alcotest.(check int) "still one load: snapshot reuse is independent" 1
    st.Service.st_fresh_loads

let test_synth_stream_deterministic () =
  let spec (js : Service.job list) =
    List.map
      (fun (j : Service.job) ->
        (j.Service.j_attack.Catalog.id, j.Service.j_config.Config.name,
         j.Service.j_chaos_seed))
      js
  in
  let a = Service.synth_stream ~seed:42 ~n:30 () in
  let b = Service.synth_stream ~seed:42 ~n:30 () in
  let c = Service.synth_stream ~seed:43 ~n:30 () in
  Alcotest.(check bool) "same seed, same stream" true (spec a = spec b);
  Alcotest.(check bool) "different seed, different stream" true (spec a <> spec c);
  Alcotest.(check bool) "stream mixes chaos jobs in" true
    (List.exists (fun (j : Service.job) -> j.Service.j_chaos_seed <> None) a)

let test_service_deadline () =
  let svc = Service.create ~jobs:1 () in
  let r =
    Service.exec svc (Service.job ~max_steps:50 Pna.Experiments.benign_pool)
  in
  Service.shutdown svc;
  Alcotest.(check bool) "deadline surfaced as timeout" true
    (String.length r.Service.r_status >= 7
    && String.sub r.Service.r_status 0 7 = "TIMEOUT")

(* The queue-wait histogram is sampled on the monotonic clock: one
   observation per executed job and never a negative wait. The old
   wall-clock sampling could go backwards under NTP steps and record
   negative waits; this pins the fix. One worker so the duplicate jobs
   are deterministically memo hits: with two workers, both copies of a
   distinct job can race past the memo store and execute twice. *)
let test_queue_wait_monotonic () =
  let svc = Service.create ~jobs:1 () in
  let js =
    List.map
      (fun (a : Catalog.t) -> Service.job ~config:Config.none a)
      [ Pna_attacks.L13_stack_ret.attack; Pna_attacks.L11_data_bss.attack ]
  in
  let (_ : Service.reply list) = Service.run_batch svc (js @ js @ js) in
  let st = Service.stats svc in
  Service.shutdown svc;
  let waits, wait_total = st.Service.st_queue_wait_us in
  let execs, exec_total = st.Service.st_execute_us in
  Alcotest.(check int) "one wait sample per job" 6 waits;
  Alcotest.(check bool) "waits never negative" true (wait_total >= 0.);
  (* memo hits skip execution: 2 misses (one per distinct job), 4 hits *)
  Alcotest.(check int) "one execute sample per miss" 2 execs;
  Alcotest.(check bool) "execute times positive" true (exec_total > 0.)

let test_clock_monotonic_across_domains () =
  let module Clock = Pna_telemetry.Clock in
  let a = Clock.now_ns () in
  let b = Domain.join (Domain.spawn (fun () -> Clock.now_ns ())) in
  let c = Clock.now_ns () in
  Alcotest.(check bool) "ordered across a domain spawn" true
    (Int64.compare a b <= 0 && Int64.compare b c <= 0);
  Alcotest.(check bool) "elapsed_us of an ordered pair >= 0" true
    (Clock.elapsed_us ~a ~b:c >= 0.)

(* Sharded metrics: the registry a caller sees is the same whether jobs
   ran on one worker or many, and repeated exports do not double-count. *)
let test_sharded_registry_stable () =
  let svc = Service.create ~jobs:4 () in
  let js = Service.matrix_jobs ~configs:[ Config.none ] ~max_steps:60_000 () in
  let (_ : Service.reply list) = Service.run_batch svc js in
  let dump () = Fmt.str "%a" Service.pp_prometheus svc in
  let first = dump () in
  let again = dump () in
  let st = Service.stats svc in
  Service.shutdown svc;
  Alcotest.(check string) "repeated export identical (flush is delta-based)"
    first again;
  Alcotest.(check int) "stats see every job" (List.length js) st.Service.st_jobs;
  let has fragment =
    let nh = String.length first and nn = String.length fragment in
    let rec go i = i + nn <= nh && (String.sub first i nn = fragment || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "jobs counter exported" true
    (has (Fmt.str "pna_service_jobs_total %d" (List.length js)));
  Alcotest.(check bool) "queue-wait histogram exported" true
    (has (Fmt.str "pna_service_queue_wait_us_count %d" (List.length js)))

(* The shared frozen-image store: with memo off, every worker that
   touches a scenario needs its own prepared replica, but only cold
   misses pay Interp.load — later workers thaw the published image.
   Which workers execute is the scheduler's business, so the invariant
   is structural: every worker's first encounter counts exactly one of
   (fresh load | replica thaw), so loads + thaws is at most the worker
   count, at least one load published the image, and all replies are
   identical. *)
let test_replica_store_bounds_loads () =
  let svc = Service.create ~jobs:4 ~memo:false () in
  let j = Service.job ~config:Config.none ~max_steps:60_000
      Pna_attacks.L13_stack_ret.attack in
  let replies = Service.run_batch svc (List.init 64 (fun _ -> j)) in
  let st = Service.stats svc in
  let workers = Service.jobs svc in
  Service.shutdown svc;
  Alcotest.(check int) "all jobs answered" 64 (List.length replies);
  Alcotest.(check bool) "one fingerprint" true
    (match List.map reply_fingerprint replies with
    | [] -> false
    | f :: rest -> List.for_all (( = ) f) rest);
  Alcotest.(check bool) "at least one cold load" true
    (st.Service.st_fresh_loads >= 1);
  Alcotest.(check bool) "first encounters bounded by workers" true
    (st.Service.st_fresh_loads + st.Service.st_replica_clones <= workers);
  (* every executed job beyond each worker's first is a local rewind *)
  Alcotest.(check int) "every job executed (memo off)" 64 st.Service.st_jobs

(* ------------------------------------------------------------------ *)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "service",
    [
      QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
      t "snapshot rewinds write-trace state" test_snapshot_restores_trace_state;
      t "snapshot rewinds permissions" test_snapshot_restores_perms;
      t "prepared rewind == fresh load (whole catalogue)" test_prepared_equals_fresh;
      t "supervised reload == fresh supervise" test_supervised_reload_equals_fresh;
      t "Driver.run enforces ?max_steps" test_run_max_steps_deadline;
      t "pool: 50 jobs through cap-2 queue" test_pool_runs_all_jobs;
      t "pool: job exceptions reach await" test_pool_propagates_exceptions;
      t "pool: jobs clamp" test_pool_clamp;
      t "pool: submit after shutdown rejected" test_pool_rejects_after_shutdown;
      t "batch --jobs 4 == sequential driver (full matrix)"
        test_batch_matches_sequential_driver;
      t "chaos jobs through the pool == direct supervise"
        test_batch_chaos_matches_supervise;
      t "memo cache serves repeats without executing" test_memo_hits_repeated_jobs;
      t "memo LRU evicts at the cap, keeps serving" test_memo_lru_evicts_at_cap;
      t "try_submit admits, notifies, rejects after shutdown"
        test_try_submit_and_notify;
      t "memo off still reuses snapshots" test_memo_off_recomputes;
      t "synthetic stream is seed-deterministic" test_synth_stream_deterministic;
      t "per-job deadline enforced through the service" test_service_deadline;
      t "queue-wait sampled monotonically, one per job" test_queue_wait_monotonic;
      t "monotonic clock ordered across domains" test_clock_monotonic_across_domains;
      t "sharded registry: stable, complete exports" test_sharded_registry_stable;
      t "replica store: cold loads bounded by workers"
        test_replica_store_bounds_loads;
    ] )
