(* The chaos layer: deterministic plans, supervised recovery, and the E9
   graceful-degradation sweep. *)

module Plan = Pna_chaos.Plan
module Chaos = Pna_chaos.Chaos
module Driver = Pna_attacks.Driver
module Catalog = Pna_attacks.Catalog
module Config = Pna_defense.Config
module E = Pna.Experiments
module O = Pna_minicpp.Outcome

(* ---- plans ---- *)

let test_generate_deterministic () =
  for seed = 1 to 30 do
    Alcotest.(check string)
      (Fmt.str "seed %d stable" seed)
      (Plan.to_string (Plan.generate ~seed ()))
      (Plan.to_string (Plan.generate ~seed ()))
  done

let test_plan_text_roundtrip () =
  for seed = 1 to 30 do
    let p = Plan.generate ~seed () in
    match Plan.of_string (Plan.to_string p) with
    | Ok p' ->
      Alcotest.(check string)
        (Fmt.str "seed %d round-trips" seed)
        (Plan.to_string p) (Plan.to_string p')
    | Error msg -> Alcotest.failf "seed %d failed to parse back: %s" seed msg
  done

let test_plan_parse_rejects_garbage () =
  List.iter
    (fun s ->
      match Plan.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ ""; "flip-bit access 1 bit 2"; "seed x"; "seed 1\nflip-bit access a bit 2";
      "seed 1\nnot-a-fault" ]

let fault_category = function
  | Plan.Flip_bit _ -> "flip"
  | Plan.Fail_alloc _ -> "alloc"
  | Plan.Raise_fault _ -> "fault"
  | Plan.Budget_jitter _ -> "budget"
  | Plan.Wire_truncate _ -> "trunc"
  | Plan.Wire_corrupt _ -> "corrupt"
  | Plan.Wire_duplicate -> "dup"
  | Plan.Sock_delay _ -> "sock-delay"
  | Plan.Sock_split _ -> "sock-split"
  | Plan.Sock_corrupt _ -> "sock-corrupt"
  | Plan.Sock_reset _ -> "sock-reset"

(* every fault category shows up across a modest seed range *)
let test_generation_covers_all_categories () =
  let seen = Hashtbl.create 8 in
  for seed = 1 to 200 do
    List.iter
      (fun f -> Hashtbl.replace seen (fault_category f) ())
      (Plan.generate ~seed ()).Plan.faults
  done;
  Alcotest.(check int) "all 7 default categories generated" 7
    (Hashtbl.length seen);
  (* socket faults only appear when asked for — and then all of them do *)
  for seed = 1 to 400 do
    List.iter
      (fun f -> Hashtbl.replace seen (fault_category f) ())
      (Plan.generate ~sock:true ~seed ()).Plan.faults
  done;
  Alcotest.(check int) "all 11 categories with ~sock:true" 11
    (Hashtbl.length seen)

(* ---- supervisor ---- *)

let benign_churn =
  Catalog.make ~id:"benign-churn" ~section:"test" ~name:"heap churn"
    ~segment:Catalog.Heap ~goal:"allocate/free to completion"
    ~program:Pna.Workloads.heap_churn
    ~mk_input:(fun _ -> ([ 100 ], []))
    ~check:(fun _ o ->
      if O.exited_normally o then Catalog.success "completed"
      else Catalog.failure "did not complete")
    ()

let test_recovers_from_alloc_failure () =
  let plan = { Plan.seed = 0; faults = [ Plan.Fail_alloc { at_alloc = 0 } ] } in
  let s = Driver.supervise ~plan benign_churn in
  (match s.Driver.sv_outcome.O.status with
  | O.Recovered { attempts = 2; final_attempt = 2; exit_code = 0 } -> ()
  | st -> Alcotest.failf "expected recovery in 2 attempts, got %a" O.pp_status st);
  Alcotest.(check bool) "verdict passes after recovery" true
    s.Driver.sv_verdict.Catalog.success;
  Alcotest.(check (list string)) "the injected fault fired"
    [ "fail-alloc nth 0" ] s.Driver.sv_fired;
  Alcotest.(check (list int)) "one backoff recorded" [ 1 ] s.Driver.sv_backoff_ms

let test_recovers_from_spurious_fault () =
  let plan = { Plan.seed = 0; faults = [ Plan.Raise_fault { at_step = 50 } ] } in
  let s = Driver.supervise ~plan benign_churn in
  match s.Driver.sv_outcome.O.status with
  | O.Recovered { attempts = 2; _ } -> ()
  | st -> Alcotest.failf "expected recovery, got %a" O.pp_status st

let test_recovers_from_budget_jitter () =
  (* pct 5 of 20_000 clamps to the 1_000 floor: attempt 1 times out, the
     jitter is spent, attempt 2 gets the full budget *)
  let plan = { Plan.seed = 0; faults = [ Plan.Budget_jitter { pct = 5 } ] } in
  let s = Driver.supervise ~max_steps:20_000 ~plan benign_churn in
  match s.Driver.sv_outcome.O.status with
  | O.Recovered { attempts = 2; _ } -> ()
  | st -> Alcotest.failf "expected recovery from jitter, got %a" O.pp_status st

let test_retries_are_bounded () =
  (* more injected alloc failures than retries: the supervisor gives up
     with a classified outcome, not an endless loop or an exception *)
  let faults = List.init 6 (fun k -> Plan.Fail_alloc { at_alloc = k }) in
  let plan = { Plan.seed = 0; faults } in
  let s = Driver.supervise ~max_retries:2 ~plan benign_churn in
  Alcotest.(check int) "exactly 1 + max_retries attempts" 3 s.Driver.sv_attempts;
  match s.Driver.sv_outcome.O.status with
  | O.Out_of_memory -> ()
  | st -> Alcotest.failf "expected OOM after exhausted retries, got %a" O.pp_status st

let test_clean_plan_is_invisible () =
  let plan = Plan.empty 0 in
  let s = Driver.supervise ~plan benign_churn in
  Alcotest.(check int) "one attempt" 1 s.Driver.sv_attempts;
  (match s.Driver.sv_outcome.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "expected clean exit, got %a" O.pp_status st);
  Alcotest.(check (list string)) "nothing fired" [] s.Driver.sv_fired

let test_supervised_replay_is_deterministic () =
  for seed = 1 to 10 do
    let plan = Plan.generate ~seed () in
    let run () =
      let s =
        Driver.supervise ~config:Config.stackguard ~max_steps:200_000 ~plan
          Pna_attacks.L13_stack_ret.attack
      in
      Fmt.str "%a|%d|%a" O.pp_status s.Driver.sv_outcome.O.status
        s.Driver.sv_attempts
        Fmt.(list ~sep:comma string)
        s.Driver.sv_fired
    in
    Alcotest.(check string) (Fmt.str "seed %d replays identically" seed)
      (run ()) (run ())
  done

(* wire faults are one-shot too: the engine perturbs the first delivery
   and leaves retries alone *)
let test_wire_faults_fire_once () =
  let plan =
    { Plan.seed = 0; faults = [ Plan.Wire_truncate { keep = 4 } ] }
  in
  let eng = Chaos.create plan in
  let d = String.make 20 'x' in
  (match Chaos.perturb_strings eng [ d ] with
  | [ d' ] -> Alcotest.(check int) "truncated" 4 (String.length d')
  | _ -> Alcotest.fail "one datagram expected");
  match Chaos.perturb_strings eng [ d ] with
  | [ d' ] -> Alcotest.(check int) "second delivery untouched" 20 (String.length d')
  | _ -> Alcotest.fail "one datagram expected"

(* ---- socket faults: the on_send script ---- *)

let sock_plan faults = { Plan.seed = 0; faults }

let sent steps =
  String.concat ""
    (List.filter_map (function Chaos.Send s -> Some s | _ -> None) steps)

let test_on_send_clean_passthrough () =
  let eng = Chaos.create (sock_plan []) in
  Alcotest.(check bool) "no faults: one verbatim Send" true
    (Chaos.on_send eng "hello" = [ Chaos.Send "hello" ])

let test_on_send_split () =
  let eng =
    Chaos.create
      (sock_plan [ Plan.Sock_split { at_send = 0; at_byte = 3; ms = 2 } ])
  in
  (match Chaos.on_send eng "abcdef" with
  | [ Chaos.Send a; Chaos.Delay_ms 2; Chaos.Send b ] ->
    Alcotest.(check string) "bytes intact across the stall" "abcdef" (a ^ b);
    Alcotest.(check bool) "both halves non-empty" true
      (String.length a > 0 && String.length b > 0)
  | _ -> Alcotest.fail "expected Send/Delay/Send");
  (* one-shot: the next send is clean *)
  Alcotest.(check bool) "second send untouched" true
    (Chaos.on_send eng "xy" = [ Chaos.Send "xy" ])

let test_on_send_corrupt () =
  let eng =
    Chaos.create
      (sock_plan [ Plan.Sock_corrupt { at_send = 0; pos = 2; mask = 0xff } ])
  in
  let out = sent (Chaos.on_send eng "abcd") in
  Alcotest.(check int) "same length" 4 (String.length out);
  Alcotest.(check bool) "exactly the masked byte differs" true
    (out.[0] = 'a' && out.[1] = 'b' && out.[2] <> 'c' && out.[3] = 'd')

let test_on_send_reset () =
  let eng =
    Chaos.create
      (sock_plan [ Plan.Sock_reset { at_send = 0; after_bytes = 2 } ])
  in
  (match Chaos.on_send eng "abcd" with
  | [ Chaos.Send "ab"; Chaos.Reset ] -> ()
  | _ -> Alcotest.fail "expected a truncated Send then Reset");
  let eng0 =
    Chaos.create
      (sock_plan [ Plan.Sock_reset { at_send = 0; after_bytes = 0 } ])
  in
  Alcotest.(check bool) "zero bytes: bare Reset" true
    (Chaos.on_send eng0 "abcd" = [ Chaos.Reset ])

let test_on_send_delay_prepends () =
  let eng =
    Chaos.create (sock_plan [ Plan.Sock_delay { at_send = 1; ms = 7 } ])
  in
  Alcotest.(check bool) "send 0 clean" true
    (Chaos.on_send eng "a" = [ Chaos.Send "a" ]);
  Alcotest.(check bool) "send 1 stalls first, bytes intact" true
    (Chaos.on_send eng "bc" = [ Chaos.Delay_ms 7; Chaos.Send "bc" ])

(* faults on the same send compose: corruption rewrites, reset truncates
   and ends the script — and the truncation can hide the corrupted byte,
   which is exactly what a real half-delivered mangled packet looks like *)
let test_on_send_compose () =
  let eng =
    Chaos.create
      (sock_plan
         [
           Plan.Sock_corrupt { at_send = 0; pos = 0; mask = 0x01 };
           Plan.Sock_reset { at_send = 0; after_bytes = 3 };
         ])
  in
  match Chaos.on_send eng "abcdef" with
  | [ Chaos.Send s; Chaos.Reset ] ->
    Alcotest.(check int) "reset truncates" 3 (String.length s);
    Alcotest.(check bool) "corruption applied before the cut" true (s.[0] <> 'a')
  | _ -> Alcotest.fail "expected corrupted truncated Send then Reset"

(* ---- the E9 sweep (acceptance criteria) ---- *)

let test_e9_sweep_holds () =
  let rows = E.e9 ~seeds:8 () in
  Alcotest.(check bool) ">= 200 perturbed runs" true (List.length rows >= 200);
  Alcotest.(check int) "covers all E8 defense configs"
    (List.length Config.all)
    (List.sort_uniq compare (List.map (fun r -> r.E.ch_config) rows)
    |> List.length);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Fmt.str "seed %d %s/%s: no escaped exception" r.E.ch_seed r.E.ch_attack
           r.E.ch_config)
        false r.E.ch_escaped;
      Alcotest.(check bool)
        (Fmt.str "seed %d %s/%s: degradation invariant" r.E.ch_seed
           r.E.ch_attack r.E.ch_config)
        true r.E.ch_detect_ok)
    rows;
  Alcotest.(check bool) "e9_ok agrees" true (E.e9_ok rows)

let test_e9_deterministic_byte_for_byte () =
  let render () = Fmt.str "%a" E.pp_e9 (E.e9 ~seeds:3 ()) in
  Alcotest.(check string) "two sweeps render identically" (render ()) (render ())

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "chaos",
    [
      t "plan generation is deterministic" test_generate_deterministic;
      t "plan text round-trips" test_plan_text_roundtrip;
      t "plan parser rejects garbage" test_plan_parse_rejects_garbage;
      t "generation covers every fault category" test_generation_covers_all_categories;
      t "supervisor recovers from alloc failure" test_recovers_from_alloc_failure;
      t "supervisor recovers from spurious fault" test_recovers_from_spurious_fault;
      t "supervisor recovers from budget jitter" test_recovers_from_budget_jitter;
      t "supervisor bounds its retries" test_retries_are_bounded;
      t "clean plan leaves the run untouched" test_clean_plan_is_invisible;
      t "supervised replay is deterministic" test_supervised_replay_is_deterministic;
      t "wire faults are one-shot" test_wire_faults_fire_once;
      t "on_send: clean passthrough" test_on_send_clean_passthrough;
      t "on_send: split stalls mid-frame, bytes intact" test_on_send_split;
      t "on_send: corrupt flips exactly one byte" test_on_send_corrupt;
      t "on_send: reset truncates and ends the script" test_on_send_reset;
      t "on_send: delay prepends, one-shot by send index"
        test_on_send_delay_prepends;
      t "on_send: faults on one send compose" test_on_send_compose;
      t "E9: >=200 classified runs, invariant holds" test_e9_sweep_holds;
      t "E9: byte-for-byte deterministic" test_e9_deterministic_byte_for_byte;
    ] )
