let () =
  Alcotest.run "pna"
    [
      Test_vmem.suite;
      Test_layout.suite;
      Test_heap.suite;
      Test_machine.suite;
      Test_interp.suite;
      Test_serial.suite;
      Test_syntax.suite;
      Test_coverage.suite;
      Test_listings.suite;
      Test_hardener.suite;
      Test_robustness.suite;
      Test_chaos.suite;
      Test_attacks.suite;
      Test_analysis.suite;
      Test_experiments.suite;
      Test_service.suite;
      Test_telemetry.suite;
    ]
