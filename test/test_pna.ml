(* CI's second pass exports PNA_TELEMETRY=1 (and PNA_SANITIZE=1, read by
   the attack driver) to run the whole suite with the instrumentation and
   the shadow-memory oracle live: verdicts and assertions must not move.
   The telemetry suite manages the switch itself and is unaffected. *)
let () =
  match Sys.getenv_opt "PNA_TELEMETRY" with
  | Some ("1" | "true" | "yes") -> Pna_telemetry.Telemetry.enable ()
  | _ -> ()

let () =
  Alcotest.run "pna"
    [
      Test_rand.suite;
      Test_vmem.suite;
      Test_layout.suite;
      Test_heap.suite;
      Test_machine.suite;
      Test_interp.suite;
      Test_serial.suite;
      Test_syntax.suite;
      Test_coverage.suite;
      Test_listings.suite;
      Test_hardener.suite;
      Test_robustness.suite;
      Test_chaos.suite;
      Test_attacks.suite;
      Test_sanitizer.suite;
      Test_analysis.suite;
      Test_experiments.suite;
      Test_service.suite;
      Test_telemetry.suite;
      Test_flight.suite;
      Test_net.suite;
      Test_gen.suite;
      Test_vm.suite;
    ]
