(* Tests for the telemetry layer: the JSON codec, the metrics registry,
   the span/trace ring, and the exporters. The Chrome-export test is the
   acceptance check for `pna trace`: it drives a real scenario and parses
   the emitted JSON back with our own parser. *)

module Telemetry = Pna_telemetry.Telemetry
module Trace = Pna_telemetry.Trace
module Metrics = Pna_telemetry.Metrics
module J = Pna_telemetry.Jsonx
module Driver = Pna_attacks.Driver
module Catalog = Pna_attacks.Catalog

(* Every test must leave the process-wide switch off and the ring empty:
   the rest of the suite runs with telemetry disabled. *)
let isolated f () =
  Telemetry.disable ();
  Trace.reset ();
  Fun.protect ~finally:(fun () ->
      Telemetry.disable ();
      Trace.reset ())
    f

let get = function Some v -> v | None -> Alcotest.fail "unexpected None"

(* ---------------- jsonx ---------------- *)

let test_jsonx_round_trip () =
  let v =
    J.Obj
      [
        ("s", J.Str "he said \"hi\"\n\t\\");
        ("n", J.Int (-42));
        ("f", J.Float 1.5);
        ("b", J.Bool true);
        ("nil", J.Null);
        ("l", J.List [ J.Int 1; J.Str "x"; J.Obj [] ]);
      ]
  in
  match J.of_string (J.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round trip" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_jsonx_control_chars () =
  let s = J.to_string (J.Str "a\x01b") in
  Alcotest.(check string) "escaped" "\"a\\u0001b\"" s;
  match J.of_string s with
  | Ok (J.Str s') -> Alcotest.(check string) "parsed back" "a\x01b" s'
  | _ -> Alcotest.fail "parse failed"

let test_jsonx_rejects_garbage () =
  List.iter
    (fun src ->
      match J.of_string src with
      | Ok _ -> Alcotest.failf "accepted %S" src
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "1 2"; "\"\\q\""; "nul"; "[1] trailing" ]

let test_jsonx_numbers () =
  (match J.of_string "[0, -7, 3.25, 1e3]" with
  | Ok (J.List [ J.Int 0; J.Int (-7); a; b ]) ->
    Alcotest.(check (float 1e-9)) "3.25" 3.25 (get (J.to_float a));
    Alcotest.(check (float 1e-9)) "1e3" 1000.0 (get (J.to_float b))
  | _ -> Alcotest.fail "numbers");
  (* non-finite floats have no JSON literal; we emit null *)
  Alcotest.(check string) "nan -> null" "null" (J.to_string (J.Float Float.nan))

(* ---------------- metrics ---------------- *)

let test_counter_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "requests_total" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "count" 5 (Metrics.count c);
  (* interning: same name+labels is the same instrument *)
  Metrics.incr (Metrics.counter reg "requests_total");
  Alcotest.(check int) "interned" 6 (Metrics.count c);
  (* distinct labels are distinct instruments *)
  let c2 = Metrics.counter reg "requests_total" ~labels:[ ("kind", "x") ] in
  Metrics.incr c2;
  Alcotest.(check int) "labelled separate" 1 (Metrics.count c2);
  Alcotest.(check int) "base untouched" 6 (Metrics.count c)

let test_instrument_type_clash () =
  let reg = Metrics.create () in
  let _ = Metrics.counter reg "m" in
  Alcotest.(check bool) "clash rejected" true
    (match Metrics.gauge reg "m" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_gauge_and_histogram () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "depth" in
  Metrics.set g 3.5;
  Alcotest.(check (float 1e-9)) "gauge" 3.5 (Metrics.value g);
  let h = Metrics.histogram reg "latency_us" in
  List.iter (Metrics.observe h) [ 1.0; 3.0; 100.0; 100000.0 ];
  Alcotest.(check int) "hist count" 4 (Metrics.hist_count h);
  Alcotest.(check (float 1e-6)) "hist sum" 100104.0 (Metrics.hist_sum h)

let test_snapshot_cumulative_buckets () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "h" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 1024.0 ];
  match Metrics.snapshot reg with
  | [ Metrics.Histogram_info { hist; _ } ] ->
    Alcotest.(check int) "count" 3 hist.Metrics.hi_count;
    (* buckets are cumulative and end at +Inf = count *)
    let bounds, counts = List.split hist.Metrics.hi_buckets in
    Alcotest.(check bool) "monotone" true
      (List.sort compare counts = counts);
    Alcotest.(check bool) "ends at +Inf" true
      (List.exists (fun b -> b = infinity) bounds);
    Alcotest.(check int) "last = count" 3
      (List.nth counts (List.length counts - 1))
  | _ -> Alcotest.fail "expected one histogram"

let test_prometheus_format () =
  let reg = Metrics.create () in
  Metrics.incr ~by:7 (Metrics.counter reg "jobs_total" ~labels:[ ("q", "a") ]);
  Metrics.observe (Metrics.histogram reg "wait_us") 5.0;
  let dump = Fmt.str "%a" Metrics.pp_prometheus reg in
  let contains needle =
    let nl = String.length needle and hl = String.length dump in
    let rec go i = i + nl <= hl && (String.sub dump i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Fmt.str "contains %S" needle) true
        (contains needle))
    [
      "# TYPE jobs_total counter";
      "jobs_total{q=\"a\"} 7";
      "# TYPE wait_us histogram";
      "wait_us_bucket{le=\"+Inf\"} 1";
      "wait_us_sum 5";
      "wait_us_count 1";
    ]

let test_metrics_reset () =
  let reg = Metrics.create () in
  Metrics.incr (Metrics.counter reg "c");
  Metrics.reset reg;
  Alcotest.(check int) "empty after reset" 0
    (List.length (Metrics.snapshot reg))

(* ---------------- trace ring ---------------- *)

let test_disabled_is_noop =
  isolated (fun () ->
      let ran = ref false in
      let v = Trace.with_span "s" (fun () -> ran := true; 17) in
      Trace.instant "i";
      Alcotest.(check bool) "body ran" true !ran;
      Alcotest.(check int) "value through" 17 v;
      Alcotest.(check int) "no events" 0 (List.length (Trace.events ())))

let test_span_nesting =
  isolated (fun () ->
      Telemetry.enable ();
      Trace.with_span "outer" (fun () ->
          Trace.instant ~cat:"machine" "tick";
          Trace.with_span "inner" (fun () -> ());
          Trace.add_args [ ("k", Trace.Str "v") ]);
      let evs = Trace.events () in
      Alcotest.(check int) "three events" 3 (List.length evs);
      let outer = List.find (fun e -> e.Trace.ev_name = "outer") evs in
      let inner = List.find (fun e -> e.Trace.ev_name = "inner") evs in
      let tick = List.find (fun e -> e.Trace.ev_name = "tick") evs in
      Alcotest.(check bool) "instant flagged" true tick.Trace.ev_instant;
      Alcotest.(check bool) "outer spans inner" true
        (outer.Trace.ev_ts <= inner.Trace.ev_ts
        && inner.Trace.ev_ts +. inner.Trace.ev_dur
           <= outer.Trace.ev_ts +. outer.Trace.ev_dur +. 1.0);
      Alcotest.(check bool) "add_args landed on outer" true
        (List.mem_assoc "k" outer.Trace.ev_args))

let test_span_exception_safe =
  isolated (fun () ->
      Telemetry.enable ();
      (try Trace.with_span "boom" (fun () -> failwith "x") with
      | Failure _ -> ());
      match Trace.events () with
      | [ e ] ->
        Alcotest.(check string) "span closed" "boom" e.Trace.ev_name;
        Alcotest.(check bool) "has duration" true (e.Trace.ev_dur >= 0.0)
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))

let test_ring_overflow_counts_drops =
  isolated (fun () ->
      Telemetry.enable ();
      let n = !Trace.capacity + 100 in
      for i = 1 to n do
        Trace.instant (Fmt.str "i%d" i)
      done;
      Alcotest.(check int) "ring full" !Trace.capacity
        (List.length (Trace.events ()));
      Alcotest.(check int) "drops counted" 100 (Trace.dropped ());
      Trace.reset ();
      Alcotest.(check int) "reset clears" 0 (List.length (Trace.events ()));
      Alcotest.(check int) "reset clears drops" 0 (Trace.dropped ()))

(* ---------------- trace identity + wire context ---------------- *)

let int_arg e k =
  match List.assoc_opt k e.Trace.ev_args with
  | Some (Trace.Int v) -> v
  | _ -> Alcotest.failf "event %s missing int arg %s" e.Trace.ev_name k

let test_ctx_links_spans =
  isolated (fun () ->
      Telemetry.enable ();
      let ctx = Trace.new_ctx () in
      Trace.with_ctx (Some ctx) (fun () ->
          Trace.with_span "outer" (fun () ->
              Trace.with_span "inner" (fun () -> ())));
      (* identity-less spans stay identity-less: the single-process path
         exports exactly what it exported before tracing grew a wire *)
      Trace.with_span "plain" (fun () -> ());
      let evs = Trace.events () in
      let find n = List.find (fun e -> e.Trace.ev_name = n) evs in
      let outer = find "outer" and inner = find "inner" in
      Alcotest.(check int) "outer in ctx trace" ctx.Trace.trace_id
        (int_arg outer "trace_id");
      Alcotest.(check int) "inner in same trace" ctx.Trace.trace_id
        (int_arg inner "trace_id");
      Alcotest.(check int) "outer is a root" 0 (int_arg outer "parent_id");
      Alcotest.(check int) "inner's parent is outer" (int_arg outer "span_id")
        (int_arg inner "parent_id");
      Alcotest.(check bool) "span ids nonzero and distinct" true
        (int_arg outer "span_id" <> 0
        && int_arg inner "span_id" <> 0
        && int_arg outer "span_id" <> int_arg inner "span_id");
      Alcotest.(check bool) "no identity outside ctx" true
        (not (List.mem_assoc "trace_id" (find "plain").Trace.ev_args)))

let test_wire_ctx =
  isolated (fun () ->
      Alcotest.(check bool) "switch off -> None" true (Trace.wire_ctx () = None);
      Telemetry.enable ();
      Alcotest.(check bool) "no ctx -> None" true (Trace.wire_ctx () = None);
      let ctx = Trace.new_ctx () in
      Trace.with_ctx (Some ctx) (fun () ->
          (match Trace.wire_ctx () with
          | Some (tid, 0) ->
            Alcotest.(check int) "trace id carried" ctx.Trace.trace_id tid
          | _ -> Alcotest.fail "expected the ctx with no parent span");
          Trace.with_span "rpc" (fun () ->
              match Trace.wire_ctx () with
              | Some (tid, parent) ->
                Alcotest.(check int) "trace id stable" ctx.Trace.trace_id tid;
                Alcotest.(check bool) "parent is the open span" true
                  (parent <> 0)
              | None -> Alcotest.fail "ctx lost inside a span")))

let test_emit_retroactive =
  isolated (fun () ->
      Telemetry.enable ();
      (* a queue wait clocked elsewhere lands with its measured times and
         its wire-carried identity intact *)
      Trace.emit ~cat:"net" ~name:"queue-wait" ~ts_us:5.0 ~dur_us:2.5
        ~trace:(7, 8, 9) ();
      match Trace.events () with
      | [ e ] ->
        Alcotest.(check string) "name" "queue-wait" e.Trace.ev_name;
        Alcotest.(check (float 1e-9)) "ts as measured" 5.0 e.Trace.ev_ts;
        Alcotest.(check (float 1e-9)) "dur as measured" 2.5 e.Trace.ev_dur;
        Alcotest.(check int) "trace id" 7 (int_arg e "trace_id");
        Alcotest.(check int) "span id" 8 (int_arg e "span_id");
        Alcotest.(check int) "parent id" 9 (int_arg e "parent_id")
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))

let test_merge_chrome () =
  let doc name =
    J.Obj
      [
        ( "traceEvents",
          J.List
            [
              J.Obj
                [
                  ("name", J.Str name); ("ph", J.Str "X"); ("pid", J.Int 1);
                  ("tid", J.Int 0);
                ];
            ] );
        ("displayTimeUnit", J.Str "ms");
      ]
  in
  let merged = Trace.merge_chrome [ doc "client"; doc "server" ] in
  match J.member "traceEvents" merged with
  | Some (J.List evs) ->
    Alcotest.(check int) "events concatenated" 2 (List.length evs);
    let pid e = get (J.to_int (get (J.member "pid" e))) in
    Alcotest.(check (list int)) "inputs re-homed to distinct pids" [ 1; 2 ]
      (List.map pid evs)
  | _ -> Alcotest.fail "merged document lost traceEvents"

(* ---------------- exporters ---------------- *)

let attack id =
  match
    List.find_opt (fun a -> a.Catalog.id = id) Pna_attacks.All.attacks
  with
  | Some a -> a
  | None -> Alcotest.failf "unknown attack %s" id

(* The `pna trace` acceptance test: drive a real scenario with telemetry
   on, export Chrome JSON, parse it back, and check the structure Perfetto
   relies on. *)
let test_chrome_export_parses_back =
  isolated (fun () ->
      Telemetry.enable ();
      let _ = Driver.run (attack "L13-ret") in
      let out = Fmt.str "%t" (fun ppf -> Trace.export_chrome ppf) in
      let json =
        match J.of_string (String.trim out) with
        | Ok j -> j
        | Error e -> Alcotest.failf "invalid Chrome JSON: %s" e
      in
      Alcotest.(check string) "displayTimeUnit" "ms"
        (get (J.to_str (get (J.member "displayTimeUnit" json))));
      let evs = get (J.to_list (get (J.member "traceEvents" json))) in
      let phase e = get (J.to_str (get (J.member "ph" e))) in
      List.iter
        (fun e ->
          let ph = phase e in
          Alcotest.(check bool) "known phase" true
            (List.mem ph [ "M"; "X"; "i" ]);
          ignore (get (J.to_str (get (J.member "name" e))));
          ignore (get (J.to_int (get (J.member "pid" e))));
          ignore (get (J.to_int (get (J.member "tid" e))));
          match ph with
          | "X" ->
            (* complete events carry ts and a non-negative duration *)
            ignore (get (J.to_float (get (J.member "ts" e))));
            Alcotest.(check bool) "dur >= 0" true
              (get (J.to_float (get (J.member "dur" e))) >= 0.0)
          | "i" ->
            Alcotest.(check string) "thread-scoped instant" "t"
              (get (J.to_str (get (J.member "s" e))))
          | _ -> ())
        evs;
      let names =
        List.filter_map (fun e -> J.to_str (get (J.member "name" e))) evs
      in
      List.iter
        (fun n ->
          Alcotest.(check bool) (Fmt.str "trace has %S" n) true
            (List.mem n names))
        [ "run"; "load"; "verdict"; "return_hijacked" ])

let test_jsonl_export_lines =
  isolated (fun () ->
      Telemetry.enable ();
      Trace.with_span "a" (fun () -> Trace.instant "b");
      let out = Fmt.str "%t" (fun ppf -> Trace.export_jsonl ppf) in
      let lines =
        List.filter (fun l -> String.trim l <> "")
          (String.split_on_char '\n' out)
      in
      Alcotest.(check int) "one line per event" 2 (List.length lines);
      List.iter
        (fun l ->
          match J.of_string l with
          | Ok (J.Obj _) -> ()
          | _ -> Alcotest.failf "bad JSONL line: %s" l)
        lines)

(* run spans carry the memory-counter deltas the Vmem layer collects *)
let test_run_span_args =
  isolated (fun () ->
      Telemetry.enable ();
      let _ = Driver.run (attack "L13-ret") in
      let run =
        List.find (fun e -> e.Trace.ev_name = "run") (Trace.events ())
      in
      let int_arg k =
        match List.assoc_opt k run.Trace.ev_args with
        | Some (Trace.Int v) -> v
        | _ -> Alcotest.failf "run span missing int arg %s" k
      in
      Alcotest.(check bool) "reads counted" true (int_arg "mem_reads" > 0);
      Alcotest.(check bool) "writes counted" true (int_arg "mem_writes" > 0);
      Alcotest.(check bool) "steps counted" true (int_arg "steps" > 0);
      match List.assoc_opt "scenario" run.Trace.ev_args with
      | Some (Trace.Str "L13-ret") -> ()
      | _ -> Alcotest.fail "run span missing scenario arg")

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "telemetry",
    [
      t "jsonx: encode/parse round trip" test_jsonx_round_trip;
      t "jsonx: control chars escaped" test_jsonx_control_chars;
      t "jsonx: malformed input rejected" test_jsonx_rejects_garbage;
      t "jsonx: numbers; non-finite -> null" test_jsonx_numbers;
      t "metrics: counter incr + interning" test_counter_basics;
      t "metrics: type clash rejected" test_instrument_type_clash;
      t "metrics: gauge + histogram" test_gauge_and_histogram;
      t "metrics: snapshot buckets cumulative" test_snapshot_cumulative_buckets;
      t "metrics: Prometheus exposition format" test_prometheus_format;
      t "metrics: reset" test_metrics_reset;
      t "trace: disabled is a no-op" test_disabled_is_noop;
      t "trace: span nesting, instants, add_args" test_span_nesting;
      t "trace: span closed on exception" test_span_exception_safe;
      t "trace: ring overflow counts drops" test_ring_overflow_counts_drops;
      t "trace: ctx links nested spans into a tree" test_ctx_links_spans;
      t "trace: wire_ctx picks the innermost open span" test_wire_ctx;
      t "trace: retroactive emit keeps measured times + identity"
        test_emit_retroactive;
      t "trace: merge_chrome re-homes pids, keeps linkage args"
        test_merge_chrome;
      t "chrome export parses back (pna trace)" test_chrome_export_parses_back;
      t "jsonl export: one object per line" test_jsonl_export_lines;
      t "run span carries vmem deltas" test_run_span_args;
    ] )
