(* Negative-path tests: the toolchain must fail loudly and precisely on
   malformed source, ill-typed programs and hostile inputs — never with an
   unhandled exception. *)

open Pna_minicpp.Dsl
module P = Pna_minicpp.Parser
module L = Pna_minicpp.Lexer
module Interp = Pna_minicpp.Interp
module Config = Pna_defense.Config
module O = Pna_minicpp.Outcome

let parse_fails src =
  match P.program src with
  | _ -> Alcotest.failf "accepted: %s" src
  | exception P.Error _ -> ()
  | exception L.Error _ -> ()

let test_parse_rejects () =
  List.iter parse_fails
    [
      "int x"                                  (* missing semicolon *);
      "void f() { if x { } }"                  (* missing parens *);
      "void f() { int 3x; }"                   (* bad identifier *);
      "class A { int x; }"                     (* missing ; after class *);
      "void f() { return 1 }"                  (* missing ; *);
      "void f() { x = ; }"                     (* empty rhs *);
      "int a[; "                               (* bad extent *);
      "void f() { delete[Nope] p; }"           (* unknown class in delete *);
      "int x; int x;"                          (* duplicate global *);
      "class A {}; class A {};"                (* duplicate class *);
      "void f() {} void f() {}"                (* duplicate function *);
      "void f() { \"unterminated }"            (* unterminated string *);
      "void f() { /* unterminated }"           (* unterminated comment *);
      "void f() { x @ y; }"                    (* unknown character *);
    ]

let test_lexer_positions () =
  match P.program "int a;\nint b;\nbroken broken;\n" with
  | _ -> Alcotest.fail "accepted"
  | exception P.Error { line; _ } ->
    Alcotest.(check bool) "error on line 3" true (line >= 3)

(* runtime type errors surface as crashes, not exceptions *)
let crashes body =
  let prog = program ~globals:[ global "g" int ] [ func "main" body ] in
  match (Interp.execute ~config:Config.none prog).O.status with
  | O.Crashed _ -> ()
  | st ->
    Alcotest.failf "expected a crash, got %a" O.pp_status st

let test_runtime_type_errors () =
  crashes [ set (v "nosuch") (i 1) ] (* unbound variable *);
  crashes [ expr (call "nosuch" []) ] (* undefined function *);
  crashes [ expr (deref (v "g")) ] (* deref of non-pointer *);
  crashes [ set (fld (v "g") "f") (i 1) ] (* field of non-class *)

let test_wild_pointer_reads_fault () =
  crashes [ decli "p" (ptr int) (cast (ptr int) (i 0x12345678));
            set (v "g") (deref (v "p")) ]

let test_entry_point_missing () =
  let prog = program [ func "not_main" [] ] in
  match (Interp.execute ~config:Config.none prog).O.status with
  | O.Crashed _ -> ()
  | st -> Alcotest.failf "expected crash, got %a" O.pp_status st

let test_hostile_datagrams_never_raise () =
  (* random bytes at the deserializing service: any outcome is fine as
     long as it is an Outcome, not an exception *)
  let prog =
    program ~classes:Pna_serial.Victim.classes
      ~globals:(Pna_serial.Victim.pool_global :: Pna_serial.Victim.state_globals)
      [
        Pna_serial.Victim.deserialize_func ~checked:false;
        func "main"
          [
            decl "dgram" (char_arr 128);
            decli "len" int (call "recv" [ v "dgram"; i 128 ]);
            when_ (v "len" >: i 0) [ expr (call "deserialize" [ v "dgram" ]) ];
            ret (i 0);
          ];
      ]
  in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 200 do
    let len = 1 + Random.State.int rng 64 in
    let payload =
      String.init len (fun _ -> Char.chr (Random.State.int rng 256))
    in
    ignore (Interp.execute ~config:Config.none ~input_strings:[ payload ] prog)
  done

let test_fuzzed_source_never_raises_unexpectedly () =
  (* byte-mangled versions of a real listing: parser must answer with
     Error or a program, nothing else *)
  let base =
    Pna_minicpp.Cpp_print.program_to_string
      Pna_attacks.L13_stack_ret.attack.Pna_attacks.Catalog.program
  in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 300 do
    let b = Bytes.of_string base in
    for _ = 0 to Random.State.int rng 4 do
      Bytes.set b
        (Random.State.int rng (Bytes.length b))
        (Char.chr (32 + Random.State.int rng 95))
    done;
    match P.program (Bytes.to_string b) with
    | _ -> ()
    | exception P.Error _ -> ()
    | exception L.Error _ -> ()
  done

(* ---- hostile-input-reachable resource exhaustion: classified, never an
   exception (each case regression-tests one converted failure site) ---- *)

(* Vmem.blit used to materialize the whole copy as a host array: an
   attacker-sized memcpy count meant a multi-gigabyte allocation before
   any fault check. Now it streams and faults at the segment boundary. *)
let test_huge_memcpy_crashes_cleanly () =
  crashes
    [
      decl "buf" (char_arr 16);
      expr (call "memcpy" [ v "buf"; v "buf"; i 0x7fffffff ]);
    ]

(* Vmem.read_bytes had the same shape via the [store] builtin. *)
let test_huge_store_crashes_cleanly () =
  crashes
    [
      decl "buf" (char_arr 16);
      expr (call "store" [ v "buf"; i 0x7fffffff ]);
    ]

(* Machine.intern_string used to [failwith "rodata full"]; tainted input
   strings get fresh rodata copies, so hostile input can exhaust the
   64 KiB segment. It is now a Security_stop -> Out_of_memory outcome. *)
let test_rodata_exhaustion_is_oom () =
  let prog =
    program
      ~globals:[ global "p" (ptr char) ]
      [ func "main" [ while_ (i 1) [ set (v "p") cin_str ] ] ]
  in
  let strings = List.init 80 (fun _ -> String.make 1200 'a') in
  let o =
    Interp.execute ~config:Config.none ~max_steps:10_000_000
      ~input_strings:strings prog
  in
  match o.O.status with
  | O.Out_of_memory -> ()
  | st -> Alcotest.failf "expected OOM, got %a" O.pp_status st

(* loader-time [failwith] ("data segment full", "text full") used to
   escape Interp.execute as a raw exception; now segment exhaustion is
   the same classified out-of-memory outcome the rodata path produces *)
let test_oversized_global_is_classified () =
  let prog =
    program
      ~globals:[ global "g" (char_arr 200_000) ]
      [ func "main" [ ret (i 0) ] ]
  in
  match (Interp.execute ~config:Config.none prog).O.status with
  | O.Out_of_memory -> ()
  | st -> Alcotest.failf "expected OOM, got %a" O.pp_status st

let test_text_exhaustion_is_classified () =
  let prog =
    program
      (List.init 3_000 (fun k -> func (Fmt.str "f%d" k) [ ret (i 0) ])
      @ [ func "main" [ ret (i 0) ] ])
  in
  match (Interp.execute ~config:Config.none prog).O.status with
  | O.Out_of_memory -> ()
  | st -> Alcotest.failf "expected OOM, got %a" O.pp_status st

let test_interp_budget_is_respected () =
  let prog = program [ func "main" [ while_ (i 1) [] ] ] in
  let o =
    Interp.execute ~config:Config.none ~max_steps:500 prog
  in
  Alcotest.(check bool) "stopped within budget + 1" true (o.O.steps <= 501)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "robustness",
    [
      t "parser rejects malformed programs" test_parse_rejects;
      t "errors carry useful line numbers" test_lexer_positions;
      t "runtime type errors crash cleanly" test_runtime_type_errors;
      t "wild pointer reads fault" test_wild_pointer_reads_fault;
      t "missing entry point" test_entry_point_missing;
      t "hostile datagrams never raise" test_hostile_datagrams_never_raise;
      t "mangled source never raises unexpectedly"
        test_fuzzed_source_never_raises_unexpectedly;
      t "interpreter budget respected" test_interp_budget_is_respected;
      t "huge memcpy crashes cleanly" test_huge_memcpy_crashes_cleanly;
      t "huge store crashes cleanly" test_huge_store_crashes_cleanly;
      t "rodata exhaustion is OOM" test_rodata_exhaustion_is_oom;
      t "oversized global load is classified" test_oversized_global_is_classified;
      t "text exhaustion is classified" test_text_exhaustion_is_classified;
    ] )
