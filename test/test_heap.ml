(* Tests for the free-list allocator living in simulated memory. *)

open Pna_vmem
module Heap = Pna_machine.Heap

let mk ?(size = 0x1000) () =
  let m = Vmem.create () in
  let _ = Vmem.map m ~kind:Segment.Heap ~base:0x10000 ~size ~perm:Perm.rw in
  (m, Heap.create m ~base:0x10000 ~size)

let malloc_exn h n =
  match Heap.malloc h n with
  | Some a -> a
  | None -> Alcotest.fail "unexpected OOM"

let test_malloc_basic () =
  let _, h = mk () in
  let a = malloc_exn h 16 in
  let b = malloc_exn h 16 in
  Alcotest.(check bool) "disjoint" true (b >= a + 16 + Heap.header_size);
  Alcotest.(check int) "in_use" 32 (Heap.stats h).Heap.in_use;
  Alcotest.(check int) "allocs" 2 (Heap.stats h).Heap.allocs

let test_size_rounded_to_8 () =
  let _, h = mk () in
  let a = malloc_exn h 5 in
  Alcotest.(check int) "rounded" 8 (Heap.block_size h a)

let test_free_and_reuse () =
  let _, h = mk () in
  let a = malloc_exn h 32 in
  let _b = malloc_exn h 32 in
  Heap.free h a;
  Alcotest.(check int) "in_use drops" 32 (Heap.stats h).Heap.in_use;
  let c = malloc_exn h 32 in
  Alcotest.(check int) "first-fit reuses freed block" a c

let test_split_on_reuse () =
  let _, h = mk () in
  let a = malloc_exn h 64 in
  Heap.free h a;
  let b = malloc_exn h 16 in
  Alcotest.(check int) "reuses the hole" a b;
  Alcotest.(check int) "split keeps size" 16 (Heap.block_size h b);
  (* the remainder is a free block usable by another allocation *)
  let c = malloc_exn h 16 in
  Alcotest.(check int) "tail of the hole" (a + 16 + Heap.header_size) c

let test_coalesce_forward () =
  let _, h = mk () in
  let a = malloc_exn h 16 in
  let b = malloc_exn h 16 in
  let _guard = malloc_exn h 16 in
  Heap.free h b;
  Heap.free h a;
  (* a coalesced with b: can serve a request bigger than either *)
  let c = malloc_exn h 40 in
  Alcotest.(check int) "coalesced block reused" a c

let test_coalesce_backward () =
  let _, h = mk () in
  let a = malloc_exn h 16 in
  let b = malloc_exn h 16 in
  let _guard = malloc_exn h 16 in
  Heap.free h a;
  Heap.free h b;
  (* b merged back into a: one hole big enough for 40 *)
  let c = malloc_exn h 40 in
  Alcotest.(check int) "backward-coalesced hole reused" a c

let prop_no_adjacent_free_blocks =
  let ops =
    QCheck.(list_of_size (Gen.int_range 1 40) (pair bool (int_range 1 48)))
  in
  QCheck.Test.make ~count:200 ~name:"heap: coalescing leaves no adjacent free blocks"
    ops
    (fun ops ->
      let _, h = mk ~size:0x2000 () in
      let live = ref [] in
      List.iter
        (fun (do_alloc, n) ->
          let n = max 1 n in
          if do_alloc || !live = [] then (
            match Heap.malloc h n with
            | Some a -> live := a :: !live
            | None -> ())
          else
            match !live with
            | a :: rest ->
              Heap.free h a;
              live := rest
            | [] -> ())
        ops;
      let prev_free = ref false in
      let ok = ref true in
      Heap.iter_blocks h (fun _ _ allocated ->
          if (not allocated) && !prev_free then ok := false;
          prev_free := not allocated);
      !ok)

let test_double_free_detected () =
  let _, h = mk () in
  let a = malloc_exn h 16 in
  Heap.free h a;
  (match Heap.free h a with
  | () -> Alcotest.fail "double free undetected"
  | exception Heap.Corrupted (_, msg) ->
    Alcotest.(check string) "reason" "double free" msg)

let test_forged_free_magic_detected () =
  (* an overflow that happens to forge the free-status magic into a live
     header makes the block look already-freed: freeing it must be the
     same classified double-free, not a silent list corruption *)
  let m, h = mk () in
  let a = malloc_exn h 16 in
  Vmem.write_u32 m (a - 4) 0xf7eeb10c;
  (match Heap.free h a with
  | () -> Alcotest.fail "forged magic undetected"
  | exception Heap.Corrupted (_, msg) ->
    Alcotest.(check string) "classified as double free" "double free" msg);
  let st = Heap.stats h in
  Alcotest.(check bool) "stats never go negative" true
    (st.Heap.in_use >= 0 && st.Heap.frees >= 0 && st.Heap.leaked >= 0)

let test_corrupted_header_detected () =
  let m, h = mk () in
  let a = malloc_exn h 16 in
  let _b = malloc_exn h 16 in
  (* smash the next block's status word, as a heap overflow would *)
  Vmem.write_u32 m (a + 16 + 4) 0x41414141;
  (match Heap.malloc h 16 with
  | _ -> Alcotest.fail "corruption undetected"
  | exception Heap.Corrupted _ -> ())

let test_oom () =
  let _, h = mk ~size:128 () in
  Alcotest.(check bool) "fits" true (Heap.malloc h 64 <> None);
  Alcotest.(check bool) "oom" true (Heap.malloc h 64 = None)

let test_free_partial_leak_arithmetic () =
  let _, h = mk () in
  let a = malloc_exn h 32 in
  (* GradStudent(32) -> Student(16): 8-byte tail + 8-byte header stranded *)
  let leaked = Heap.free_partial h a 16 in
  Alcotest.(check int) "leaked" 16 leaked;
  Alcotest.(check int) "stats.leaked" 16 (Heap.stats h).Heap.leaked;
  Alcotest.(check int) "tail still accounted in_use" 8 (Heap.stats h).Heap.in_use

let test_free_partial_whole_when_tiny () =
  let _, h = mk () in
  let a = malloc_exn h 16 in
  let leaked = Heap.free_partial h a 16 in
  Alcotest.(check int) "no leak when sizes match" 0 leaked;
  Alcotest.(check int) "fully freed" 0 (Heap.stats h).Heap.in_use

let test_live_blocks () =
  let _, h = mk () in
  let a = malloc_exn h 16 in
  let _b = malloc_exn h 16 in
  Alcotest.(check int) "two live" 2 (Heap.live_blocks h);
  Heap.free h a;
  Alcotest.(check int) "one live" 1 (Heap.live_blocks h)

let test_peak_tracking () =
  let _, h = mk () in
  let a = malloc_exn h 64 in
  Heap.free h a;
  let _ = malloc_exn h 16 in
  Alcotest.(check int) "peak is the high-water mark" 64 (Heap.stats h).Heap.peak

(* Random alloc/free sequences maintain allocator invariants. *)
let prop_allocator_invariants =
  let ops =
    QCheck.(list_of_size (Gen.int_range 1 60) (pair bool (int_range 1 48)))
  in
  QCheck.Test.make ~count:200 ~name:"heap: random ops keep blocks disjoint"
    ops
    (fun ops ->
      let _, h = mk ~size:0x2000 () in
      let live = ref [] in
      List.iter
        (fun (do_alloc, n) ->
          let n = max 1 n in
          (* shrinking may drive n to 0 *)
          if do_alloc || !live = [] then (
            match Heap.malloc h n with
            | Some a -> live := (a, Heap.block_size h a) :: !live
            | None -> ())
          else
            match !live with
            | (a, _) :: rest ->
              Heap.free h a;
              live := rest
            | [] -> ())
        ops;
      (* live blocks disjoint and within the arena *)
      let sorted = List.sort compare !live in
      let rec disjoint = function
        | (a, sa) :: ((b, _) :: _ as rest) ->
          a + sa + Heap.header_size <= b + Heap.header_size && disjoint rest
        | _ -> true
      in
      let in_use_ok =
        (Heap.stats h).Heap.in_use
        = List.fold_left (fun acc (_, s) -> acc + s) 0 !live
      in
      disjoint sorted && in_use_ok)

let prop_malloc_alignment =
  QCheck.Test.make ~count:200 ~name:"heap: payloads are 8-aligned"
    QCheck.(int_range 1 64)
    (fun n ->
      let _, h = mk () in
      match Heap.malloc h n with
      | Some a -> a mod 8 = 0
      | None -> false)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "heap",
    [
      t "malloc basic" test_malloc_basic;
      t "sizes rounded to 8" test_size_rounded_to_8;
      t "free and first-fit reuse" test_free_and_reuse;
      t "split on reuse" test_split_on_reuse;
      t "forward coalescing" test_coalesce_forward;
      t "backward coalescing" test_coalesce_backward;
      QCheck_alcotest.to_alcotest prop_no_adjacent_free_blocks;
      t "double free detected" test_double_free_detected;
      t "forged free magic detected" test_forged_free_magic_detected;
      t "corrupted header detected" test_corrupted_header_detected;
      t "OOM returns None" test_oom;
      t "free_partial leak arithmetic" test_free_partial_leak_arithmetic;
      t "free_partial frees whole block when tiny" test_free_partial_whole_when_tiny;
      t "live block count" test_live_blocks;
      t "peak tracking" test_peak_tracking;
      QCheck_alcotest.to_alcotest prop_allocator_invariants;
      QCheck_alcotest.to_alcotest prop_malloc_alignment;
    ] )
