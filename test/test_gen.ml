(* Tests for the generative attack catalogue: the genome grammar and its
   codec, the scenario builder, the differential oracle, corpus
   persistence, minimization and campaign/gate determinism. *)

module R = Pna_rand.Rand
module Genome = Pna_gen.Genome
module Build = Pna_gen.Build
module Oracle = Pna_gen.Oracle
module Corpus = Pna_gen.Corpus
module Minimize = Pna_gen.Minimize
module Fuzz = Pna_gen.Fuzz
module Gate = Pna_gen.Gate
module Catalog = Pna_attacks.Catalog
module All = Pna_attacks.All

let stream seed n =
  let rng = R.create seed in
  List.init n (fun _ -> Genome.generate rng)

let test_codec_roundtrip () =
  List.iter
    (fun g ->
      match Genome.decode (Genome.encode g) with
      | Ok g' ->
        Alcotest.(check string) "roundtrip preserves identity" (Genome.id g)
          (Genome.id g');
        Alcotest.(check bool) "roundtrip is structural equality" true (g = g')
      | Error m -> Alcotest.failf "decode failed on %s: %s" (Genome.id g) m)
    (stream 0xc0dec 200)

let test_codec_total () =
  let g = List.hd (stream 5 1) in
  let enc = Genome.encode g in
  (* truncations, bit flips and garbage must all land in Error *)
  for len = 0 to String.length enc - 1 do
    match Genome.decode (String.sub enc 0 len) with
    | Ok _ -> Alcotest.failf "truncation to %d bytes decoded" len
    | Error _ -> ()
  done;
  let flipped = Bytes.of_string enc in
  Bytes.set flipped 0 (Char.chr (Char.code (Bytes.get flipped 0) lxor 0xff));
  (match Genome.decode (Bytes.to_string flipped) with
  | Ok _ | Error _ -> ());
  match Genome.decode "not a genome at all" with
  | Ok _ -> Alcotest.fail "garbage decoded"
  | Error _ -> ()

let test_generate_deterministic () =
  let ids seed = List.map Genome.id (stream seed 300) in
  Alcotest.(check (list string)) "same seed, same stream" (ids 7) (ids 7);
  Alcotest.(check bool) "different seed, different stream" true
    (ids 7 <> ids 8)

let test_generate_diverse () =
  let gs = stream 11 300 in
  let labels f = List.sort_uniq compare (List.map f gs) in
  Alcotest.(check bool) "several arena classes" true
    (List.length (labels (fun g -> Genome.arena_label g.Genome.g_arena)) >= 5);
  Alcotest.(check bool) "all four targets drawn" true
    (List.length (labels (fun g -> Genome.target_label g.Genome.g_target)) = 4);
  Alcotest.(check bool) "all three scripts drawn" true
    (List.length (labels (fun g -> Genome.script_label g.Genome.g_script)) = 3);
  (* §3.5 internal placements appear *)
  Alcotest.(check bool) "internal placements generated" true
    (List.exists (fun g -> g.Genome.g_internal_off > 0) gs)

let test_oracle_classifies_everything () =
  (* no escaped exception and no unclassified crash across a sample *)
  List.iter
    (fun g ->
      let rep = Oracle.run ~max_steps:20_000 g in
      Alcotest.(check bool)
        (Fmt.str "%s escaped" (Genome.id g))
        false rep.Oracle.o_escaped;
      Alcotest.(check bool)
        (Fmt.str "%s produced features" (Genome.id g))
        true
        (rep.Oracle.o_features <> []))
    (stream 21 40)

let test_corpus_roundtrip () =
  let gs = stream 31 50 in
  let s = Corpus.to_string gs in
  (match Corpus.of_string s with
  | Ok gs' ->
    Alcotest.(check (list string)) "corpus roundtrip" (List.map Genome.id gs)
      (List.map Genome.id gs')
  | Error m -> Alcotest.failf "roundtrip failed: %s" m);
  Alcotest.(check string) "encoding is canonical" s (Corpus.to_string gs)

let test_corpus_rejects_corruption () =
  let gs = stream 37 10 in
  let s = Corpus.to_string gs in
  let expect_error what s' =
    match Corpus.of_string s' with
    | Ok _ -> Alcotest.failf "%s was accepted" what
    | Error _ -> ()
  in
  expect_error "empty string" "";
  expect_error "bad magic" ("XXXXXXXX" ^ String.sub s 8 (String.length s - 8));
  expect_error "truncation" (String.sub s 0 (String.length s - 9));
  expect_error "trailing garbage" (s ^ "junk");
  let flipped = Bytes.of_string s in
  Bytes.set flipped 20 (Char.chr (Char.code (Bytes.get flipped 20) lxor 0x55));
  expect_error "bit flip" (Bytes.to_string flipped)

let test_shrink_strictly_simpler () =
  (* every shrink candidate re-encodes and never equals its parent *)
  List.iter
    (fun g ->
      List.iter
        (fun c ->
          Alcotest.(check bool) "candidate differs from parent" true (c <> g);
          match Genome.decode (Genome.encode c) with
          | Ok c' -> Alcotest.(check bool) "candidate roundtrips" true (c = c')
          | Error m -> Alcotest.failf "candidate broken: %s" m)
        (Genome.shrink_candidates g))
    (stream 41 60)

let test_minimize_preserves_predicate () =
  let g =
    (* find a genome with some meat on it *)
    List.find
      (fun g -> g.Genome.g_depth = 2 && g.Genome.g_extra <> [])
      (stream 43 200)
  in
  let reproduces c = c.Genome.g_script = g.Genome.g_script in
  let m = Minimize.minimize ~budget:80 ~reproduces g in
  Alcotest.(check bool) "minimized still reproduces" true (reproduces m);
  Alcotest.(check bool) "minimized is no bigger" true
    (String.length (Genome.encode m) <= String.length (Genome.encode g))

let test_campaign_deterministic () =
  let c1 = Fuzz.campaign ~n:60 ~seed:9 () in
  let c2 = Fuzz.campaign ~n:60 ~seed:9 () in
  Alcotest.(check string) "byte-identical corpora"
    (Corpus.to_string c1.Fuzz.f_corpus)
    (Corpus.to_string c2.Fuzz.f_corpus);
  Alcotest.(check int) "same hot count" c1.Fuzz.f_hot c2.Fuzz.f_hot;
  Alcotest.(check (list string)) "same divergence fingerprints"
    (List.map (fun d -> d.Fuzz.c_fingerprint) c1.Fuzz.f_divergences)
    (List.map (fun d -> d.Fuzz.c_fingerprint) c2.Fuzz.f_divergences);
  Alcotest.(check int) "no escaped exceptions" 0 c1.Fuzz.f_escaped;
  Alcotest.(check bool) "novelty filter actually filters" true
    (c1.Fuzz.f_kept < c1.Fuzz.f_generated);
  (* accounting: every distinct genome lands in exactly one truth bucket *)
  Alcotest.(check int) "hot + benign = generated" c1.Fuzz.f_generated
    (c1.Fuzz.f_hot + c1.Fuzz.f_benign);
  Alcotest.(check int) "confusion matrix covers every scenario"
    c1.Fuzz.f_generated
    (c1.Fuzz.f_union_tp + c1.Fuzz.f_union_fp + c1.Fuzz.f_union_fn
    + c1.Fuzz.f_union_tn)

let test_gate_small () =
  let g = Gate.run ~seed:5 ~n:40 () in
  Alcotest.(check bool) "determinism holds" true g.Gate.e_deterministic;
  Alcotest.(check int) "no escapes" 0 g.Gate.e_stats.Fuzz.f_escaped;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Fmt.str "repro %s reproduces"
           (Genome.id r.Gate.rp_div.Fuzz.c_minimized))
        true r.Gate.rp_ok)
    g.Gate.e_repros;
  Alcotest.(check bool) "gate passes" true g.Gate.e_ok

let test_register_find () =
  let g = List.hd (stream 47 1) in
  let sc = Build.scenario g in
  All.register sc;
  (match All.find sc.Catalog.id with
  | Some found ->
    Alcotest.(check string) "registered scenario is findable" sc.Catalog.id
      found.Catalog.id
  | None -> Alcotest.fail "registered scenario not found");
  (* a registration can never shadow the static catalogue *)
  let static = List.hd All.attacks in
  All.register { sc with Catalog.id = static.Catalog.id };
  (match All.find static.Catalog.id with
  | Some found ->
    Alcotest.(check string) "static catalogue wins on collision"
      static.Catalog.name found.Catalog.name
  | None -> Alcotest.fail "static attack vanished");
  Alcotest.(check bool) "registered ids listed" true
    (List.mem sc.Catalog.id (All.registered_ids ()))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "gen",
    [
      t "genome codec roundtrips" test_codec_roundtrip;
      t "genome decode is total" test_codec_total;
      t "generation is a pure function of the seed" test_generate_deterministic;
      t "generation covers the grammar" test_generate_diverse;
      t "oracle classifies every run" test_oracle_classifies_everything;
      t "corpus roundtrips canonically" test_corpus_roundtrip;
      t "corpus rejects corruption" test_corpus_rejects_corruption;
      t "shrink candidates are well-formed" test_shrink_strictly_simpler;
      t "minimization preserves the predicate" test_minimize_preserves_predicate;
      t "campaigns are deterministic and accounted" test_campaign_deterministic;
      t "the E17 gate passes at small n" test_gate_small;
      t "dynamic registration feeds All.find" test_register_find;
    ] )
