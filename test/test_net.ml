(* Tests for the TCP front end: frame codec totality, memo-log
   crash-safety, server lifecycle over loopback, client retry
   classification and a miniature chaos soak. *)

module Frame = Pna_net.Frame
module Memolog = Pna_net.Memolog
module Server = Pna_net.Server
module Client = Pna_net.Client
module Loadgen = Pna_net.Loadgen
module Service = Pna_service.Service
module Driver = Pna_attacks.Driver
module Catalog = Pna_attacks.Catalog
module All = Pna_attacks.All
module Telemetry = Pna_telemetry.Telemetry
module Trace = Pna_telemetry.Trace
module E = Pna.Experiments

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---- frame codec: round-trip ---- *)

let msg_equal a b = a = b

let gen_msg : Frame.msg QCheck.Gen.t =
  let open QCheck.Gen in
  let str = string_size ~gen:(char_range 'a' 'z') (int_bound 40) in
  let corr = int_bound 0xffffff in
  oneof
    [
      (let* rq_corr = corr
       and* rq_attack = str
       and* rq_config = str
       and* rq_chaos_seed = opt (int_bound 1000)
       and* rq_max_steps = opt (int_range 1 2_000_000)
       and* rq_sanitize = bool
       and* rq_engine = oneofl [ `Interp; `Bytecode ]
       and* rq_trace =
         opt (pair (int_range 1 0x3fffffff) (int_range 1 0x3fffffff))
       in
       return
         (Frame.Request
            { rq_corr; rq_attack; rq_config; rq_chaos_seed; rq_max_steps;
              rq_sanitize; rq_engine; rq_trace }));
      (let* rp_corr = corr
       and* rp_id = str
       and* rp_config = str
       and* rp_chaos_seed = opt (int_bound 1000)
       and* rp_status = str
       and* rp_success = bool
       and* rp_detail = str
       and* rp_attempts = int_bound 100
       and* rp_cached = bool
       and* rp_violations = int_bound 1000 in
       return
         (Frame.Reply_ok
            { rp_corr; rp_id; rp_config; rp_chaos_seed; rp_status; rp_success;
              rp_detail; rp_attempts; rp_cached; rp_violations }));
      (let* sh_corr = corr and* sh_retry_after_ms = int_bound 10_000 in
       return (Frame.Reply_shed { sh_corr; sh_retry_after_ms }));
      (let* er_corr = corr and* er_message = str in
       return (Frame.Reply_error { er_corr; er_message }));
      (let* n = int_bound 0xffffff in
       return (Frame.Ping n));
      (let* n = int_bound 0xffffff in
       return (Frame.Pong n));
      (let* n = int_bound 0xffffff in
       return (Frame.Stats_req n));
      (let* st_nonce = int_bound 0xffffff and* st_payload = str in
       return (Frame.Stats_rep { st_nonce; st_payload }));
    ]

let arb_msg = QCheck.make ~print:(fun _ -> "<msg>") gen_msg

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"frame: encode/decode round-trip" arb_msg
    (fun msg ->
      let s = Frame.encode msg in
      match Frame.decode s with
      | Frame.Msg (msg', used) -> used = String.length s && msg_equal msg msg'
      | Frame.Need _ | Frame.Fail _ -> false)

(* decode never raises and always makes a classifiable statement, no
   matter how the frame is mangled *)
let classified s =
  match Frame.decode s with
  | Frame.Msg (_, used) -> used > 0
  | Frame.Need n -> n > 0
  | Frame.Fail e -> String.length (Frame.error_class e) > 0
  | exception e ->
    Alcotest.failf "decode raised %s" (Printexc.to_string e)

let prop_bitflip_classified =
  QCheck.Test.make ~count:500
    ~name:"frame: bit flips always classified, never an exception"
    QCheck.(triple arb_msg (int_bound 10_000) (int_range 0 7))
    (fun (msg, pos, bit) ->
      let s = Bytes.of_string (Frame.encode msg) in
      let i = pos mod Bytes.length s in
      Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor (1 lsl bit)));
      let s = Bytes.to_string s in
      (* a single flipped bit can never still decode as the same bytes:
         either an earlier header check rejects it, the CRC catches it,
         the payload parser rejects it, or the length field now promises
         different bytes (Need) *)
      classified s
      &&
      match Frame.decode s with
      | Frame.Msg (_, used) -> used <> String.length s
      | Frame.Need _ | Frame.Fail _ -> true)

let prop_truncation_classified =
  QCheck.Test.make ~count:500
    ~name:"frame: truncations ask for more bytes, never an exception"
    QCheck.(pair arb_msg (int_bound 10_000))
    (fun (msg, cut) ->
      let s = Frame.encode msg in
      let keep = cut mod String.length s in
      let s = String.sub s 0 keep in
      classified s
      &&
      match Frame.decode s with
      | Frame.Need n -> n > 0
      | Frame.Msg _ -> false
      | Frame.Fail _ -> false)

let prop_oversize_classified =
  QCheck.Test.make ~count:100
    ~name:"frame: an inflated length field fails fast (no hang, no hoard)"
    arb_msg
    (fun msg ->
      let b = Bytes.of_string (Frame.encode msg) in
      (* declare ~2G of payload; decode must reject on the spot instead
         of returning Need and parking the connection forever *)
      Bytes.set b 8 '\xff';
      Bytes.set b 9 '\xff';
      Bytes.set b 10 '\xff';
      Bytes.set b 11 '\x7f';
      match Frame.decode (Bytes.to_string b) with
      | Frame.Fail (Frame.Oversize _) -> true
      | _ -> false)

let test_stream_decode () =
  let msgs =
    [
      Frame.Ping 1;
      Frame.Reply_shed { sh_corr = 2; sh_retry_after_ms = 25 };
      Frame.Reply_error { er_corr = 0; er_message = "nope" };
      Frame.Pong 3;
    ]
  in
  let stream = String.concat "" (List.map Frame.encode msgs) in
  let rec consume off acc =
    if off >= String.length stream then List.rev acc
    else
      match Frame.decode ~off stream with
      | Frame.Msg (m, used) -> consume (off + used) (m :: acc)
      | _ -> Alcotest.fail "stream decode stalled"
  in
  Alcotest.(check int) "all frames recovered" (List.length msgs)
    (List.length (consume 0 []));
  Alcotest.(check bool) "order preserved" true (consume 0 [] = msgs)

let test_garbage_prefix () =
  (* wrong magic classified immediately, not mistaken for a short read *)
  match Frame.decode "XXXXXXXXXXXXXXXXXXXX" with
  | Frame.Fail e -> Alcotest.(check string) "class" "magic" (Frame.error_class e)
  | _ -> Alcotest.fail "garbage accepted"

(* ---- wire versioning: v2 is strictly additive ---- *)

let version_byte m = Char.code (Frame.encode m).[4]

let test_frame_versioning () =
  let req trace =
    Frame.Request
      {
        Frame.rq_corr = 1;
        rq_attack = "overflow-vptr";
        rq_config = "none";
        rq_chaos_seed = None;
        rq_max_steps = None;
        rq_sanitize = false;
        rq_engine = `Interp;
        rq_trace = trace;
      }
  in
  (* everything a v1 peer can say still carries the v1 version byte, so
     an old decoder keeps accepting traffic from a new process *)
  let legacy =
    [
      req None;
      Frame.Reply_ok
        {
          rp_corr = 1; rp_id = "overflow-vptr"; rp_config = "none";
          rp_chaos_seed = None; rp_status = "exited 0"; rp_success = true;
          rp_detail = ""; rp_attempts = 1; rp_cached = false;
          rp_violations = 0;
        };
      Frame.Reply_shed { sh_corr = 1; sh_retry_after_ms = 5 };
      Frame.Reply_error { er_corr = 0; er_message = "m" };
      Frame.Ping 1;
      Frame.Pong 2;
    ]
  in
  List.iter
    (fun m ->
      Alcotest.(check int) "legacy frame stamped v1" 1 (version_byte m);
      match Frame.decode (Frame.encode m) with
      | Frame.Msg (m', _) -> Alcotest.(check bool) "v1 round-trip" true (m = m')
      | _ -> Alcotest.fail "legacy frame failed to decode")
    legacy;
  (* only frames that actually use a v2 feature pay the version bump *)
  let v2 =
    [
      req (Some (0xabc, 0xdef));
      Frame.Stats_req 3;
      Frame.Stats_rep { st_nonce = 3; st_payload = "pna_up 1\n" };
    ]
  in
  List.iter
    (fun m ->
      Alcotest.(check int) "v2 feature stamped v2" 2 (version_byte m);
      match Frame.decode (Frame.encode m) with
      | Frame.Msg (m', _) -> Alcotest.(check bool) "v2 round-trip" true (m = m')
      | _ -> Alcotest.fail "v2 frame failed to decode")
    v2

(* ---- memo-entry codec + memo log ---- *)

let mk_entry ?(attack = "overflow-vptr") ?(config = "none") ?(seed = None)
    ?(hash = 0x1234) ?(engine = "interp") () =
  {
    Service.me_attack = attack;
    me_config = config;
    me_chaos_seed = seed;
    me_input_hash = hash;
    me_sanitize = false;
    me_engine = engine;
    me_reply =
      {
        Service.r_id = attack;
        r_config = config;
        r_chaos_seed = seed;
        r_status = "exited 0";
        r_success = true;
        r_detail = "hijacked";
        r_attempts = 1;
        r_cached = false;
        r_violations = 0;
      };
  }

let test_memo_entry_roundtrip () =
  let e = mk_entry ~seed:(Some 7) ~hash:(-42) () in
  match Frame.decode_memo_entry (Frame.encode_memo_entry e) with
  | Ok e' -> Alcotest.(check bool) "round-trip" true (e = e')
  | Error m -> Alcotest.failf "decode_memo_entry: %s" m

let with_tmp f =
  let path = Filename.temp_file "pna_memolog" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let append_raw path bytes =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc bytes;
  close_out oc

let test_memolog_roundtrip () =
  with_tmp @@ fun path ->
  let o = Memolog.open_log path in
  Alcotest.(check int) "fresh log empty" 0 (List.length o.Memolog.entries);
  List.iter
    (Memolog.append o.Memolog.log)
    [ mk_entry (); mk_entry ~attack:"dangling-read" ~hash:9 () ];
  Memolog.close o.Memolog.log;
  let o2 = Memolog.open_log path in
  Memolog.close o2.Memolog.log;
  Alcotest.(check int) "both records recovered" 2
    (List.length o2.Memolog.entries);
  Alcotest.(check int) "clean tail" 0 o2.Memolog.torn_bytes

let test_memolog_torn_tail () =
  with_tmp @@ fun path ->
  let o = Memolog.open_log path in
  List.iter (Memolog.append o.Memolog.log) [ mk_entry (); mk_entry ~hash:5 () ];
  Memolog.close o.Memolog.log;
  let good_len = (Unix.stat path).Unix.st_size in
  (* simulate a kill -9 mid-append: a torn half-record on the tail *)
  append_raw path "\x40\x00\x00\x00\xde\xad\xbe\xefhalf a rec";
  let o2 = Memolog.open_log path in
  Memolog.close o2.Memolog.log;
  Alcotest.(check int) "valid prefix recovered" 2
    (List.length o2.Memolog.entries);
  Alcotest.(check bool) "torn bytes reported" true (o2.Memolog.torn_bytes > 0);
  Alcotest.(check int) "file physically truncated" good_len
    (Unix.stat path).Unix.st_size;
  (* and the next append lands on a clean boundary *)
  let o3 = Memolog.open_log path in
  Memolog.append o3.Memolog.log (mk_entry ~hash:6 ());
  Memolog.close o3.Memolog.log;
  let o4 = Memolog.open_log path in
  Memolog.close o4.Memolog.log;
  Alcotest.(check int) "append after recovery" 3
    (List.length o4.Memolog.entries)

let test_memolog_corrupt_middle () =
  with_tmp @@ fun path ->
  let o = Memolog.open_log path in
  List.iter (Memolog.append o.Memolog.log)
    [ mk_entry ~hash:1 (); mk_entry ~hash:2 (); mk_entry ~hash:3 () ];
  Memolog.close o.Memolog.log;
  (* flip one byte inside the second record: recovery keeps the longest
     valid prefix (record 1) and truncates the rest *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd (8 + 8 + 40) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xff") 0 1);
  Unix.close fd;
  let o2 = Memolog.open_log path in
  Memolog.close o2.Memolog.log;
  Alcotest.(check bool) "prefix only" true (List.length o2.Memolog.entries < 3);
  Alcotest.(check bool) "torn bytes reported" true (o2.Memolog.torn_bytes > 0)

let test_memolog_compact () =
  with_tmp @@ fun path ->
  let o = Memolog.open_log path in
  (* same key twice (first wins), one distinct key *)
  List.iter (Memolog.append o.Memolog.log)
    [
      mk_entry ~hash:1 ();
      { (mk_entry ~hash:1 ()) with
        Service.me_reply =
          { (mk_entry ~hash:1 ()).Service.me_reply with
            Service.r_detail = "late duplicate" } };
      mk_entry ~hash:2 ();
    ];
  Memolog.close o.Memolog.log;
  let kept, dropped = Memolog.compact path in
  Alcotest.(check (pair int int)) "kept/dropped" (2, 1) (kept, dropped);
  let o2 = Memolog.open_log path in
  Memolog.close o2.Memolog.log;
  Alcotest.(check int) "compacted records" 2 (List.length o2.Memolog.entries);
  (* first-writer-wins: the surviving record for the duplicated key is
     the first one, matching the in-memory memo's behavior *)
  match o2.Memolog.entries with
  | e :: _ ->
    Alcotest.(check string) "first record won" "hijacked"
      e.Service.me_reply.Service.r_detail
  | [] -> Alcotest.fail "empty after compact"

(* ---- server lifecycle over loopback ---- *)

let attack_id = (List.hd All.attacks).Catalog.id

let mk_req ?(corr = 1) ?(attack = attack_id) ?(config = "none")
    ?(max_steps = 60_000) ?trace () =
  {
    Frame.rq_corr = corr;
    rq_attack = attack;
    rq_config = config;
    rq_chaos_seed = None;
    rq_max_steps = Some max_steps;
    rq_sanitize = false;
    rq_engine = Pna_attacks.Driver.env_engine;
    rq_trace = trace;
  }

let with_server ?config f =
  let svc = Service.create ~jobs:2 () in
  let server = Server.start ?config svc in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Service.shutdown svc)
    (fun () -> f server)

let test_server_lifecycle () =
  with_server @@ fun server ->
  let port = Server.port server in
  Alcotest.(check bool) "ephemeral port bound" true (port > 0);
  match Client.connect ~timeout_s:20. ~host:"127.0.0.1" ~port () with
  | Error f -> Alcotest.failf "connect: %s" (Client.failure_label f)
  | Ok c ->
    Alcotest.(check bool) "ping" true (Client.ping c 99 = Ok ());
    (match Client.request c (mk_req ()) with
    | Ok (Client.Served rep) ->
      Alcotest.(check int) "corr echoed" 1 rep.Frame.rp_corr;
      Alcotest.(check string) "scenario id" attack_id rep.Frame.rp_id;
      let expect =
        Driver.run ~max_steps:60_000 ~sanitize:false (List.hd All.attacks)
      in
      Alcotest.(check bool) "verdict matches in-process driver"
        expect.Driver.verdict.Catalog.success rep.Frame.rp_success
    | Ok _ -> Alcotest.fail "expected Served"
    | Error f -> Alcotest.failf "request: %s" (Client.failure_label f));
    (* same request again: memoized, same verdict *)
    (match Client.request c (mk_req ~corr:2 ()) with
    | Ok (Client.Served rep) ->
      Alcotest.(check int) "corr echoed" 2 rep.Frame.rp_corr;
      Alcotest.(check bool) "served from memo" true rep.Frame.rp_cached
    | _ -> Alcotest.fail "memoized request failed");
    (* unknown attack: a classified rejection, connection stays open *)
    (match Client.request c (mk_req ~corr:3 ~attack:"no-such-attack" ()) with
    | Ok (Client.Rejected m) ->
      Alcotest.(check bool) "reason names the attack" true
        (contains ~sub:"no-such-attack" m)
    | _ -> Alcotest.fail "expected Rejected");
    Alcotest.(check bool) "still serving after rejection" true
      (Client.ping c 100 = Ok ());
    Client.close c

(* Accept-fanout: several select loops share one listener. Connections
   land on whichever loop wins the accept, every one must serve, and a
   graceful stop must drain all loops (the shared listener is closed
   exactly once). *)
let test_sharded_accept () =
  let config = { Server.default_config with loops = 3 } in
  with_server ~config @@ fun server ->
  let port = Server.port server in
  let clients =
    List.init 6 (fun i ->
        match Client.connect ~timeout_s:20. ~host:"127.0.0.1" ~port () with
        | Error f -> Alcotest.failf "connect %d: %s" i (Client.failure_label f)
        | Ok c -> c)
  in
  List.iteri
    (fun i c ->
      match Client.request c (mk_req ~corr:(100 + i) ()) with
      | Ok (Client.Served rep) ->
        Alcotest.(check int) "corr echoed" (100 + i) rep.Frame.rp_corr
      | Ok _ -> Alcotest.failf "conn %d: expected Served" i
      | Error f -> Alcotest.failf "request %d: %s" i (Client.failure_label f))
    clients;
  List.iter (fun c -> Alcotest.(check bool) "ping" true (Client.ping c 7 = Ok ()))
    clients;
  List.iter Client.close clients

let test_server_rejects_malformed () =
  with_server @@ fun server ->
  let port = Server.port server in
  (* raw garbage: the server must answer a classified error and close,
     then keep serving fresh connections *)
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
  ignore (Unix.write fd (Bytes.make 32 'Z') 0 32);
  let buf = Bytes.create 4096 in
  let rec read_reply acc =
    match Frame.decode acc with
    | Frame.Msg (m, _) -> Some m
    | Frame.Need _ -> (
      match Unix.read fd buf 0 4096 with
      | 0 -> None
      | n -> read_reply (acc ^ Bytes.sub_string buf 0 n)
      | exception Unix.Unix_error _ -> None)
    | Frame.Fail _ -> None
  in
  (match read_reply "" with
  | Some (Frame.Reply_error { er_corr = 0; er_message }) ->
    Alcotest.(check bool) "classified" true (String.length er_message > 0)
  | _ -> Alcotest.fail "expected Reply_error for garbage");
  (* ... and the poisoned connection is closed *)
  Alcotest.(check int) "connection closed" 0
    (try Unix.read fd buf 0 4096 with Unix.Unix_error _ -> 0);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match Client.connect ~timeout_s:10. ~host:"127.0.0.1" ~port () with
  | Ok c ->
    Alcotest.(check bool) "server alive" true (Client.ping c 7 = Ok ());
    Client.close c
  | Error f -> Alcotest.failf "reconnect: %s" (Client.failure_label f)

let test_server_memo_log_recovery () =
  with_tmp @@ fun path ->
  (* first server computes and persists *)
  with_server
    ~config:{ Server.default_config with memo_log = Some path }
    (fun server ->
      let port = Server.port server in
      match Client.connect ~timeout_s:20. ~host:"127.0.0.1" ~port () with
      | Error f -> Alcotest.failf "connect: %s" (Client.failure_label f)
      | Ok c ->
        (match Client.request c (mk_req ()) with
        | Ok (Client.Served _) -> ()
        | _ -> Alcotest.fail "first request failed");
        Client.close c);
  (* second server recovers the entry and serves it from memo *)
  with_server
    ~config:{ Server.default_config with memo_log = Some path }
    (fun server ->
      Alcotest.(check bool) "entries recovered" true (Server.recovered server > 0);
      let port = Server.port server in
      match Client.connect ~timeout_s:20. ~host:"127.0.0.1" ~port () with
      | Error f -> Alcotest.failf "connect: %s" (Client.failure_label f)
      | Ok c ->
        (match Client.request c (mk_req ()) with
        | Ok (Client.Served rep) ->
          Alcotest.(check bool) "served from recovered memo" true
            rep.Frame.rp_cached
        | _ -> Alcotest.fail "request after recovery failed");
        Client.close c)

let test_client_retry_classification () =
  (* a port with nothing behind it: connect-refused is Retryable, and
     call gives up after its attempt budget without ever raising *)
  match
    Client.call ~attempts:2 ~base_ms:1 ~timeout_s:1. ~host:"127.0.0.1"
      ~port:1 (mk_req ())
  with
  | Error (Client.Retryable _) -> ()
  | Error (Client.Terminal m) -> Alcotest.failf "terminal: %s" m
  | Ok _ -> Alcotest.fail "request to a dead port succeeded"

(* ---- miniature chaos soak ---- *)

let test_mini_chaos_soak () =
  with_server @@ fun server ->
  let port = Server.port server in
  let r =
    Loadgen.run ~conns:1 ~window:8 ~chaos:true ~distinct:8 ~timeout_s:20.
      ~host:"127.0.0.1" ~port ~n:150 ~seed:3 ()
  in
  Alcotest.(check int) "no hung requests" 0 r.Loadgen.lg_hung;
  Alcotest.(check int) "no divergent replies" 0 r.Loadgen.lg_sig_conflicts;
  let rejected =
    List.fold_left (fun a (_, n) -> a + n) 0 r.Loadgen.lg_rejected
  in
  Alcotest.(check int) "every request accounted" r.Loadgen.lg_n
    (r.Loadgen.lg_served + r.Loadgen.lg_shed_final + rejected
    + r.Loadgen.lg_hung);
  Alcotest.(check bool) "most requests served" true
    (r.Loadgen.lg_served > r.Loadgen.lg_n / 2)

(* ---- stats frames over a live server ---- *)

let test_stats_over_wire () =
  with_server @@ fun server ->
  let port = Server.port server in
  match Client.connect ~timeout_s:20. ~host:"127.0.0.1" ~port () with
  | Error f -> Alcotest.failf "connect: %s" (Client.failure_label f)
  | Ok c ->
    (match Client.stats c 42 with
    | Error f -> Alcotest.failf "stats: %s" (Client.failure_label f)
    | Ok payload ->
      Alcotest.(check bool) "Prometheus exposition payload" true
        (contains ~sub:"pna_net_draining" payload);
      (* the second poll sees the first one counted under its own kind *)
      (match Client.stats c 43 with
      | Ok p2 ->
        Alcotest.(check bool) "stats replies counted by kind" true
          (contains ~sub:"pna_net_replies_total{kind=\"stats\"}" p2)
      | Error f -> Alcotest.failf "second stats: %s" (Client.failure_label f)));
    (* the connection still serves ordinary traffic afterwards *)
    Alcotest.(check bool) "ping after stats" true (Client.ping c 9 = Ok ());
    Client.close c

(* ---- cross-process trace merge ---- *)

(* Satellite acceptance: a sampled load over loopback, the export split
   into its client-side and server-side halves, the halves merged with
   [Trace.merge_chrome] — every sampled request must come back as one
   connected span tree with no orphans and queue-wait inside its
   request span. *)
let test_wire_trace_merge () =
  Trace.reset ();
  Fun.protect ~finally:Trace.reset @@ fun () ->
  let w =
    Telemetry.with_enabled (fun () ->
        E.e18_wire ~requests:32 ~sample_every:4 ~seed:5 ())
  in
  Alcotest.(check bool) "some requests sampled" true (w.E.w_traced > 0);
  Alcotest.(check int) "one trace per sampled request" w.E.w_traced
    w.E.w_traces;
  Alcotest.(check bool) "every trace rooted at client-request" true
    w.E.w_roots_ok;
  Alcotest.(check int) "no orphan spans after merge" 0 w.E.w_orphans;
  Alcotest.(check bool) "client/request/queue-wait/job layers present" true
    w.E.w_layers_ok;
  Alcotest.(check bool) "queue-wait never outlasts its request" true
    w.E.w_queue_ok;
  Alcotest.(check int) "no trace-ring drops" 0 w.E.w_dropped

(* ---- loadgen request-mix determinism ---- *)

let test_loadgen_mix_seeded () =
  let mix ?targets seed =
    Array.to_list
      (Array.map Loadgen.spec_key (Loadgen.specs ?targets ~distinct:64 ~seed ()))
  in
  Alcotest.(check (list string)) "same seed, same stream" (mix 11) (mix 11);
  Alcotest.(check bool) "different seed, different stream" true
    (mix 11 <> mix 12);
  (* a non-power-of-two target pool (the modulo-bias regression): the
     stream stays a pure function of the seed and only draws from the
     pool — rejection sampling may consume a varying number of raw draws
     per pick, which the old mixing scheme turned into bias *)
  let pool = List.init 13 (fun i -> Fmt.str "corpus-%02d" i) in
  Alcotest.(check (list string)) "seeded over 13 targets"
    (mix ~targets:pool 21) (mix ~targets:pool 21);
  Array.iter
    (fun s ->
      Alcotest.(check bool) "spec drawn from the pool" true
        (List.mem s.Loadgen.s_attack pool))
    (Loadgen.specs ~targets:pool ~distinct:64 ~seed:21 ());
  (* every target of a small pool is reachable: no index starvation *)
  let drawn =
    Array.fold_left
      (fun acc s -> if List.mem s.Loadgen.s_attack acc then acc
                    else s.Loadgen.s_attack :: acc)
      []
      (Loadgen.specs ~targets:pool ~distinct:512 ~seed:33 ())
  in
  Alcotest.(check int) "all 13 targets drawn in 512 specs" 13
    (List.length drawn);
  (* [Some []] and [None] both mean the full catalogue *)
  Alcotest.(check (list string)) "empty target list = catalogue"
    (mix ~targets:[] 5) (mix 5)

let suite =
  ( "net",
    [
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_bitflip_classified;
      QCheck_alcotest.to_alcotest prop_truncation_classified;
      QCheck_alcotest.to_alcotest prop_oversize_classified;
      Alcotest.test_case "stream decode" `Quick test_stream_decode;
      Alcotest.test_case "garbage prefix classified" `Quick test_garbage_prefix;
      Alcotest.test_case "wire v2 is additive: version bytes + round-trips"
        `Quick test_frame_versioning;
      Alcotest.test_case "memo-entry codec round-trip" `Quick
        test_memo_entry_roundtrip;
      Alcotest.test_case "memolog round-trip" `Quick test_memolog_roundtrip;
      Alcotest.test_case "memolog torn-tail recovery" `Quick
        test_memolog_torn_tail;
      Alcotest.test_case "memolog corrupt-middle recovery" `Quick
        test_memolog_corrupt_middle;
      Alcotest.test_case "memolog compaction" `Quick test_memolog_compact;
      Alcotest.test_case "server lifecycle" `Quick test_server_lifecycle;
      Alcotest.test_case "sharded accept-fanout serves and drains" `Quick
        test_sharded_accept;
      Alcotest.test_case "malformed frames rejected, server survives" `Quick
        test_server_rejects_malformed;
      Alcotest.test_case "memo-log recovery across restarts" `Quick
        test_server_memo_log_recovery;
      Alcotest.test_case "client retry classification" `Quick
        test_client_retry_classification;
      Alcotest.test_case "mini chaos soak" `Quick test_mini_chaos_soak;
      Alcotest.test_case "stats frames over a live server" `Quick
        test_stats_over_wire;
      Alcotest.test_case "cross-process trace merge: connected span trees"
        `Quick test_wire_trace_merge;
      Alcotest.test_case "loadgen mix is seed-determined over any pool" `Quick
        test_loadgen_mix_seeded;
    ] )
