(* End-to-end tests over the attack catalogue: every listing succeeds with
   defenses off, the right defense stops the right attack, hardened
   variants are safe, and the headline §5.2 StackGuard result holds. *)

module C = Pna_attacks.Catalog
module D = Pna_attacks.Driver
module All = Pna_attacks.All
module Config = Pna_defense.Config
module O = Pna_minicpp.Outcome
module Event = Pna_machine.Event

let run ?config id =
  match All.find id with
  | Some a -> D.run ?config a
  | None -> Alcotest.failf "unknown attack %s" id

let check_success r =
  if not r.D.verdict.C.success then
    Alcotest.failf "attack %s failed: %s (%a)" r.D.attack.C.id
      r.D.verdict.C.detail O.pp_status r.D.outcome.O.status

let check_blocked r =
  if r.D.verdict.C.success then
    Alcotest.failf "attack %s succeeded despite %s" r.D.attack.C.id
      r.D.config.Config.name

(* one test per catalogue entry under no defenses *)
let success_cases =
  List.map
    (fun (a : C.t) ->
      Alcotest.test_case (Fmt.str "%s succeeds undefended" a.C.id) `Quick
        (fun () -> check_success (D.run ~config:Config.none a)))
    All.attacks

let hardened_cases =
  List.filter_map
    (fun (a : C.t) ->
      Option.map
        (fun _ ->
          Alcotest.test_case (Fmt.str "%s hardened variant is safe" a.C.id)
            `Quick (fun () ->
              match D.run_hardened ~config:Config.none a with
              | Some (o, safe, _) ->
                if not safe then
                  Alcotest.failf "hardened %s unsafe: %a" a.C.id O.pp_status
                    o.O.status
              | None -> Alcotest.fail "no hardened variant"))
        a.C.hardened)
    All.attacks

(* §5.2: StackGuard catches the naive smash... *)
let test_stackguard_detects_naive () =
  let r = run ~config:Config.stackguard "L13-ret" in
  (match r.D.outcome.O.status with
  | O.Stack_smashing_detected -> ()
  | st -> Alcotest.failf "expected canary abort, got %a" O.pp_status st);
  check_blocked r

(* ... but not the selective overwrite. *)
let test_stackguard_misses_bypass () =
  let r = run ~config:Config.stackguard "L13-bypass" in
  check_success r;
  (* and the canary event never fired *)
  Alcotest.(check bool) "no canary event" false
    (List.exists
       (function Event.Canary_smashed _ -> true | _ -> false)
       r.D.outcome.O.events)

let test_shadow_stack_blocks_all_ret_hijacks () =
  List.iter
    (fun id -> check_blocked (run ~config:Config.shadow_stack id))
    [ "L13-ret"; "L13-bypass"; "L13-inject"; "L19-arrstack" ]

let test_shadow_stack_no_false_block () =
  (* attacks that do not touch return addresses still succeed *)
  List.iter
    (fun id -> check_success (run ~config:Config.shadow_stack id))
    [ "L11-bss"; "L15-var"; "L17-funptr"; "L21-leakarr" ]

let test_bounds_check_blocks_oversize_placements () =
  List.iter
    (fun id -> check_blocked (run ~config:Config.bounds_check id))
    [ "L11-bss"; "L13-ret"; "L16-member"; "VT-bss"; "L19-arrstack"; "L05-remote" ]

let test_bounds_check_misses_equal_size () =
  (* the placement fits its arena; the overflow happens elsewhere *)
  List.iter
    (fun id -> check_success (run ~config:Config.bounds_check id))
    [ "L06-copyloop"; "L10-internal"; "L21-leakarr"; "L23-memleak" ]

let test_nx_blocks_code_injection_only () =
  check_blocked (run ~config:Config.nx "L13-inject");
  (* arc injection returns into real code: NX is irrelevant *)
  check_success (run ~config:Config.nx "L13-ret");
  check_success (run ~config:Config.nx "VT-bss")

let test_sanitize_stops_leaks_only () =
  check_blocked (run ~config:Config.sanitize "L21-leakarr");
  check_blocked (run ~config:Config.sanitize "L22-leakobj");
  check_success (run ~config:Config.sanitize "L11-bss");
  check_success (run ~config:Config.sanitize "L13-ret")

let test_pool_discipline_stops_memleak () =
  check_blocked (run ~config:Config.pool_discipline "L23-memleak");
  check_success (run ~config:Config.pool_discipline "L11-bss")

let test_full_defense_blocks_everything_but_gaps () =
  (* under the full stack, only the equal-size-placement attacks remain *)
  List.iter
    (fun (a : C.t) ->
      let r = D.run ~config:Config.full a in
      match a.C.id with
      | "L06-copyloop" | "L10-internal" -> check_success r
      | _ -> check_blocked r)
    All.attacks

let test_l13_taints_return_address () =
  let r = run "L13-ret" in
  Alcotest.(check bool) "tainted hijack event" true
    (List.exists
       (function
         | Event.Return_hijacked { tainted; _ } -> tainted
         | _ -> false)
       r.D.outcome.O.events)

let test_l15_dos_step_blowup () =
  (* forced n grows -> steps grow linearly; benign run is small *)
  let steps n =
    let o =
      Pna_minicpp.Interp.execute ~config:Config.none ~max_steps:10_000_000
        ~input_ints:[ n ] Pna_attacks.L15_stack_var.program_
    in
    o.O.steps
  in
  let s100 = steps 100 and s10k = steps 10_000 in
  Alcotest.(check bool) "monotone blowup" true (s10k > (s100 * 50));
  Alcotest.(check bool) "roughly linear" true
    (s10k < s100 * 200)

let test_l23_leak_is_linear () =
  let leaked iters =
    let prog = Pna_attacks.L23_memleak.mk_program ~checked:false in
    let m = Pna_minicpp.Interp.load ~config:Config.none prog in
    Pna_machine.Machine.set_input ~ints:[ iters ] ~strings:[] m;
    let _ = Pna_minicpp.Interp.run m prog ~entry:"main" in
    Pna_machine.Machine.leaked_bytes m
  in
  Alcotest.(check int) "100 iters" 1600 (leaked 100);
  Alcotest.(check int) "200 iters" 3200 (leaked 200)

let test_l21_secret_bytes_verbatim () =
  let r = run "L21-leakarr" in
  Alcotest.(check bool) "full passwd line leaks" true
    (D.output_contains r.D.outcome "SECRET-TOKEN-1337:/root:/bin/bash")

let test_catalog_ids_unique () =
  let ids = List.map (fun a -> a.C.id) All.attacks in
  Alcotest.(check int) "no duplicate ids"
    (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_catalog_covers_paper_listings () =
  let listings =
    List.filter_map (fun a -> a.C.listing) All.attacks |> List.sort_uniq compare
  in
  (* every attack listing of the paper: 5-8, 10-23 (9 is folded into 8) *)
  List.iter
    (fun l ->
      Alcotest.(check bool) (Fmt.str "listing %d covered" l) true
        (List.mem l listings))
    [ 3; 5; 6; 7; 8; 10; 11; 12; 13; 14; 15; 16; 17; 18; 19; 20; 21; 22; 23 ]

let test_verdicts_have_detail () =
  List.iter
    (fun (a : C.t) ->
      let r = D.run a in
      Alcotest.(check bool)
        (Fmt.str "%s detail nonempty" a.C.id)
        true
        (String.length r.D.verdict.C.detail > 0))
    All.attacks

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "attacks",
    success_cases @ hardened_cases
    @ [
        t "StackGuard detects the naive smash" test_stackguard_detects_naive;
        t "StackGuard misses the selective bypass (§5.2)"
          test_stackguard_misses_bypass;
        t "shadow stack blocks return hijacks" test_shadow_stack_blocks_all_ret_hijacks;
        t "shadow stack lets non-ret attacks through" test_shadow_stack_no_false_block;
        t "bounds check blocks oversize placements" test_bounds_check_blocks_oversize_placements;
        t "bounds check misses equal-size placements" test_bounds_check_misses_equal_size;
        t "NX blocks code injection only" test_nx_blocks_code_injection_only;
        t "sanitize stops leaks only" test_sanitize_stops_leaks_only;
        t "pool discipline stops the memory leak" test_pool_discipline_stops_memleak;
        t "full defense stack" test_full_defense_blocks_everything_but_gaps;
        t "hijacked return address is tainted" test_l13_taints_return_address;
        t "DoS step blow-up is linear in n" test_l15_dos_step_blowup;
        t "memory leak is linear in iterations" test_l23_leak_is_linear;
        t "leaked secret appears verbatim" test_l21_secret_bytes_verbatim;
        t "catalogue ids unique" test_catalog_ids_unique;
        t "catalogue covers the paper's listings" test_catalog_covers_paper_listings;
        t "verdicts carry diagnostics" test_verdicts_have_detail;
      ] )
