(* Tests over the experiment harness itself: every experiment reproduces
   the paper's qualitative shape. These are the assertions EXPERIMENTS.md
   reports. *)

module E = Pna.Experiments
module Driver = Pna_attacks.Driver
module Catalog = Pna_attacks.Catalog
module O = Pna_minicpp.Outcome

let test_e1_all_succeed () =
  List.iter
    (fun (r : Driver.result) ->
      Alcotest.(check bool)
        (Fmt.str "%s demonstrated" r.Driver.attack.Catalog.id)
        true r.Driver.verdict.Catalog.success)
    (E.e1 ())

let test_e2_e3_shape () =
  match E.e2_e3 () with
  | [ naive_none; naive_sg; bypass_none; bypass_sg ] ->
    Alcotest.(check bool) "naive/none hijacks" true naive_none.E.hijacked;
    Alcotest.(check bool) "naive/stackguard detected" true naive_sg.E.detected;
    Alcotest.(check bool) "naive/stackguard stopped" false naive_sg.E.hijacked;
    Alcotest.(check bool) "bypass/none hijacks" true bypass_none.E.hijacked;
    Alcotest.(check bool) "bypass/stackguard NOT detected" false
      bypass_sg.E.detected;
    Alcotest.(check bool) "bypass/stackguard hijacks anyway" true
      bypass_sg.E.hijacked
  | _ -> Alcotest.fail "expected 4 trials"

let test_e4_leak_shape () =
  let rows = E.e4 () in
  List.iter
    (fun r ->
      let expected_leak = r.E.leak_config = "none" in
      Alcotest.(check bool)
        (Fmt.str "%s/%s leak" r.E.leak_attack r.E.leak_config)
        expected_leak r.E.secret_leaked;
      if expected_leak then
        Alcotest.(check bool) "stale window positive" true (r.E.stale_bytes > 0))
    rows;
  (* the object leak window is exactly the size difference *)
  (match
     List.find_opt
       (fun r -> r.E.leak_attack = "L22-leakobj" && r.E.leak_config = "none")
       rows
   with
  | Some r -> Alcotest.(check int) "32-16" 16 r.E.stale_bytes
  | None -> Alcotest.fail "missing row")

let test_e5_monotone () =
  let rows = E.e5 ~bounds:[ 5; 100; 10_000 ] () in
  let steps = List.map (fun r -> r.E.steps) rows in
  Alcotest.(check bool) "monotone" true (List.sort compare steps = steps);
  match rows with
  | [ benign; _; big ] ->
    Alcotest.(check bool) "blowup >= 100x" true (big.E.steps > benign.E.steps * 100)
  | _ -> Alcotest.fail "unexpected rows"

let test_e5_timeout_row () =
  match E.e5 ~bounds:[ 0x3fffffff ] () with
  | [ r ] -> (
    match r.E.status with
    | O.Timeout _ -> ()
    | st -> Alcotest.failf "expected timeout, got %a" O.pp_status st)
  | _ -> Alcotest.fail "one row expected"

let test_e6_exact_prediction () =
  List.iter
    (fun r ->
      Alcotest.(check int)
        (Fmt.str "leak at %d iterations" r.E.iterations)
        r.E.predicted r.E.leaked)
    (E.e6 ~points:[ 0; 10; 100; 500 ] ())

let test_e7_headline () =
  let rows = E.e7 () in
  Alcotest.(check bool) "our checker flags all" true
    (List.for_all (fun r -> r.E.ours) rows);
  Alcotest.(check bool) "legacy flags none" true
    (List.for_all (fun r -> not r.E.legacy) rows);
  Alcotest.(check bool) "no hardened false positives" true
    (List.for_all (fun r -> r.E.hardened_clean <> Some false) rows)

let test_e8_no_defense_never_blocks () =
  let matrix = E.e8_matrix ~configs:[ Pna_defense.Config.none ] () in
  List.iter
    (fun (_, cells) ->
      match cells with
      | [ (_, E.Win) ] -> ()
      | _ -> Alcotest.fail "undefended attack should win")
    matrix

let test_e8_overhead_workload_clean () =
  List.iter
    (fun (c, status, _steps) ->
      match status with
      | O.Exited _ -> ()
      | st ->
        Alcotest.failf "benign workload failed under %s: %a"
          c.Pna_defense.Config.name O.pp_status st)
    (E.e8_overhead ~n:100 ())

let test_e10_fuzz_shape () =
  let t = E.e10 ~trials:100 () in
  Alcotest.(check int) "all trials accounted" 100 (t.E.f_clean + t.E.f_crashed + t.E.f_exploited);
  Alcotest.(check bool) "fuzzing mostly crashes" true (t.E.f_crashed > 90);
  Alcotest.(check int) "no lucky exploit" 0 t.E.f_exploited;
  Alcotest.(check bool) "directed attacker wins" true t.E.directed_works;
  Alcotest.(check bool) "checker flags it" true t.E.statically_flagged

(* Composing defenses never weakens them: an attack stopped by any single
   mechanism is also stopped by the full stack. *)
let test_defense_monotonicity () =
  List.iter
    (fun (a : Catalog.t) ->
      let blocked c =
        not (Driver.run ~config:c a).Driver.verdict.Pna_attacks.Catalog.success
      in
      let any_single =
        List.exists blocked
          Pna_defense.Config.
            [ stackguard; shadow_stack; bounds_check; sanitize; nx; pool_discipline ]
      in
      if any_single then
        Alcotest.(check bool)
          (Fmt.str "%s blocked under full" a.Catalog.id)
          true
          (blocked Pna_defense.Config.full))
    Pna_attacks.All.attacks

let test_e11_repair_headline () =
  let rows = E.e11 () in
  let survivors =
    List.filter_map
      (fun r -> if r.E.neutralized then None else Some r.E.r_attack)
      rows
  in
  Alcotest.(check (list string)) "only the copy-loop attacks survive"
    [ "L06-copyloop"; "L10-internal" ]
    (List.sort compare survivors);
  Alcotest.(check bool) "no silent gaps" true
    (List.for_all (fun r -> r.E.residual_flagged) rows)

let test_e12_service_throughput () =
  (* scale:[1] skips the unasserted hardware-dependent scaling rows; the
     jobs:4-vs-sequential determinism check runs inside e12 regardless *)
  let r = E.e12 ~scale:[ 1 ] () in
  Alcotest.(check bool) "pooled verdicts match the sequential driver" true
    r.E.sr_agree;
  Alcotest.(check bool) "memoization at least doubles throughput" true
    (r.E.sr_memo_speedup >= 2.0)

let test_e13_telemetry () =
  (* small reps/blocks keep this quick; the overhead ratio gate itself is
     timing-sensitive, so CI asserts it via `pna telemetry` while this
     test pins the structural claims: every scenario trace is complete,
     nothing dropped, and both timing legs actually ran *)
  Pna_telemetry.Telemetry.disable ();
  let r = E.e13 ~reps:2 ~blocks:2 () in
  Alcotest.(check bool) "baseline timed" true (r.E.t13_overhead.E.ov_baseline_s > 0.);
  Alcotest.(check bool) "production timed" true
    (r.E.t13_overhead.E.ov_production_s > 0.);
  Alcotest.(check bool) "rows cover all scenarios x 2 configs" true
    (List.length r.E.t13_rows = 2 * List.length Pna_attacks.All.attacks);
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Fmt.str "%s/%s trace complete" t.E.tr_scenario t.E.tr_config)
        true
        (t.E.tr_complete && t.E.tr_blocking_seen))
    r.E.t13_rows;
  Alcotest.(check int) "no ring drops" 0 r.E.t13_dropped;
  Alcotest.(check bool) "telemetry left disabled" false
    (Pna_telemetry.Telemetry.enabled ())

let test_e15_fast_path () =
  (* scale:[] skips the wall-clock scaling sweep (hardware-dependent; CI
     asserts it via `pna scaling`); the equivalence and live-speed claims
     are structural and hold on any host *)
  let r = E.e15 ~iters:100_000 ~scale:[] () in
  Alcotest.(check bool) "rows cover all scenarios x 2 configs" true
    (List.length r.E.t15_rows = 2 * List.length Pna_attacks.All.attacks);
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (Fmt.str "%s/%s fast==byte" row.E.fq_scenario row.E.fq_config)
        true
        (E.e15_equiv_row_ok row))
    r.E.t15_rows;
  Alcotest.(check bool) "pooled matches sequential" true r.E.t15_pool_agree;
  Alcotest.(check bool) "both speed legs timed" true
    (r.E.t15_speed.E.fs_fast_ns > 0. && r.E.t15_speed.E.fs_byte_ns > 0.);
  (* the real gate is >= 3x via `pna scaling`; the tier-1 floor only
     requires the fast path to win at all, so scheduler noise on a loaded
     CI box cannot flake the suite *)
  Alcotest.(check bool) "fast path beats byte path" true
    (r.E.t15_speed.E.fs_ratio > 1.)

let test_workload_heap_churn () =
  let o = Pna.Workloads.run Pna.Workloads.heap_churn ~n:500 in
  match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "heap churn failed: %a" O.pp_status st

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "experiments",
    [
      t "E1: all attacks demonstrated" test_e1_all_succeed;
      t "E2/E3: StackGuard detects naive, misses bypass" test_e2_e3_shape;
      t "E4: leak iff unsanitized; window = size diff" test_e4_leak_shape;
      t "E5: DoS steps monotone and linear" test_e5_monotone;
      t "E5: huge bound never completes" test_e5_timeout_row;
      t "E6: leak exactly matches prediction" test_e6_exact_prediction;
      t "E7: 25/25 vs 0/25, no hardened FPs" test_e7_headline;
      t "E8: undefended attacks always win" test_e8_no_defense_never_blocks;
      t "E8: benign workload passes every defense" test_e8_overhead_workload_clean;
      t "E10: fuzzing crashes, never exploits" test_e10_fuzz_shape;
      t "composing defenses is monotone" test_defense_monotonicity;
      t "E11: repair neutralizes all but copy loops" test_e11_repair_headline;
      t "E12: service matches driver; memo pays off" test_e12_service_throughput;
      t "E13: traces complete, no drops" test_e13_telemetry;
      t "E15: fast path equivalent and faster" test_e15_fast_path;
      t "workload: heap churn" test_workload_heap_churn;
    ] )
