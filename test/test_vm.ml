(** The bytecode engine: QCheck equivalence between the compiled VM and
    the tree-walking interpreter over generated genomes — plain,
    sanitized, under chaos fault plans and under tight step deadlines —
    plus the serving layer's engine-keyed memo cache. The exhaustive
    catalogue x config x accounting sweep is the E19 [vmgate]; these are
    the properties CI re-checks on every run. *)

module R = Pna_rand.Rand
module Genome = Pna_gen.Genome
module Build = Pna_gen.Build
module Catalog = Pna_attacks.Catalog
module Driver = Pna_attacks.Driver
module All = Pna_attacks.All
module Config = Pna_defense.Config
module Outcome = Pna_minicpp.Outcome
module Plan = Pna_chaos.Plan
module Service = Pna_service.Service

(* A genome is a pure function of its generator seed, so shrinking over
   the seed shrinks over scenarios. *)
let genome_arb =
  QCheck.make ~print:Genome.summary
    QCheck.Gen.(
      map (fun seed -> Genome.generate (R.create seed)) (int_bound 1_000_000))

(* Everything observable about a run: the full outcome (status, step
   count, event stream, program output), the verdict and the shadow
   map's violation list. *)
let fingerprint (r : Driver.result) =
  (r.Driver.outcome, r.Driver.verdict, r.Driver.violations)

let prop_engines_agree =
  QCheck.Test.make ~count:300
    ~name:"vm: engines agree on outcome, events and shadow verdict"
    genome_arb
    (fun g ->
      let a = Build.scenario g in
      let run engine sanitize =
        fingerprint (Driver.run ~max_steps:60_000 ~sanitize ~engine a)
      in
      run `Interp false = run `Bytecode false
      && run `Interp true = run `Bytecode true)

let prop_engines_agree_under_deadline =
  QCheck.Test.make ~count:60
    ~name:"vm: a tight max_steps deadline trips at the same step"
    genome_arb
    (fun g ->
      let a = Build.scenario g in
      let run engine =
        fingerprint (Driver.run ~max_steps:200 ~sanitize:true ~engine a)
      in
      run `Interp = run `Bytecode)

(* sv_plan carries the consumed plan value; everything else must match
   attempt for attempt, backoff for backoff. *)
let sup_fingerprint (s : Driver.supervised) =
  ( s.Driver.sv_attempts,
    s.Driver.sv_final_attempt,
    s.Driver.sv_backoff_ms,
    s.Driver.sv_fired,
    s.Driver.sv_outcome,
    s.Driver.sv_verdict )

let prop_engines_agree_under_chaos =
  QCheck.Test.make ~count:60
    ~name:"vm: chaos-supervised runs agree attempt for attempt"
    QCheck.(pair genome_arb (int_bound 10_000))
    (fun (g, seed) ->
      let a = Build.scenario g in
      let run engine =
        sup_fingerprint
          (Driver.supervise ~max_steps:60_000
             ~plan:(Plan.generate ~seed ())
             ~engine a)
      in
      run `Interp = run `Bytecode)

(* The static catalogue, plain: quick smoke that the paper's own
   scenarios ride the VM identically (vmgate does the full matrix). *)
let test_catalogue_engines_agree () =
  List.iter
    (fun (a : Catalog.t) ->
      let run engine = fingerprint (Driver.run ~max_steps:200_000 ~engine a) in
      Alcotest.(check bool)
        (a.Catalog.id ^ ": engines agree")
        true
        (run `Interp = run `Bytecode))
    All.attacks

(* The memo key includes the engine (the PR 4 sanitize-key lesson): an
   interpreted verdict must never be served to a bytecode job or vice
   versa, even though the verdicts agree — the cache is keyed on what
   ran, not on what it happened to return. *)
let test_memo_keys_on_engine () =
  let svc = Service.create ~jobs:1 () in
  let a = Pna_attacks.L13_stack_ret.attack in
  let ji = Service.job ~config:Config.none ~engine:`Interp a in
  let jb = Service.job ~config:Config.none ~engine:`Bytecode a in
  let i1 = Service.exec svc ji in
  let i2 = Service.exec svc ji in
  let b1 = Service.exec svc jb in
  let b2 = Service.exec svc jb in
  Service.shutdown svc;
  Alcotest.(check bool) "repeated interp job hits the memo" true
    i2.Service.r_cached;
  Alcotest.(check bool) "bytecode job must not hit the interp entry" false
    b1.Service.r_cached;
  Alcotest.(check bool) "repeated bytecode job hits its own entry" true
    b2.Service.r_cached;
  Alcotest.(check bool) "both engines served the same verdict" true
    ({ i1 with Service.r_cached = false }
    = { b1 with Service.r_cached = false })

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "vm",
    [
      t "catalogue: engines agree plain" test_catalogue_engines_agree;
      t "memo cache is engine-keyed" test_memo_keys_on_engine;
      QCheck_alcotest.to_alcotest prop_engines_agree;
      QCheck_alcotest.to_alcotest prop_engines_agree_under_deadline;
      QCheck_alcotest.to_alcotest prop_engines_agree_under_chaos;
    ] )
