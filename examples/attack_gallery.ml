(* Attack gallery: every listing of the paper, run end-to-end on the
   simulated machine, with the attacker's view narrated.

     dune exec examples/attack_gallery.exe
*)

module C = Pna_attacks.Catalog
module D = Pna_attacks.Driver
module O = Pna_minicpp.Outcome

let () =
  Fmt.pr
    "Kundu & Bertino, \"A New Class of Buffer Overflow Attacks\" (ICDCS'11)@.\
     Every attack from the paper, demonstrated on the simulated 32-bit \
     machine:@.@.";
  List.iter
    (fun (a : C.t) ->
      Fmt.pr "=== %s — %s ===@." a.C.id a.C.name;
      (match a.C.listing with
      | Some l -> Fmt.pr "    paper: Listing %d (§%s), %s segment@." l a.C.section
                    (C.segment_name a.C.segment)
      | None -> Fmt.pr "    paper: §%s, %s segment@." a.C.section
                  (C.segment_name a.C.segment));
      Fmt.pr "    goal:  %s@." a.C.goal;
      let r = D.run a in
      Fmt.pr "    outcome: %a@." O.pp_status r.D.outcome.O.status;
      Fmt.pr "    verdict: %s — %s@."
        (if r.D.verdict.C.success then "ATTACK SUCCEEDED" else "attack failed")
        r.D.verdict.C.detail;
      (match D.run_hardened a with
      | Some (_, true, _) ->
        Fmt.pr "    hardened (§5.1 correct coding): attack neutralized@."
      | Some (o, false, _) ->
        Fmt.pr "    hardened variant STILL vulnerable: %a@." O.pp_status o.O.status
      | None -> ());
      Fmt.pr "@.")
    Pna_attacks.All.attacks;
  let wins =
    List.length
      (List.filter
         (fun a -> (D.run a).D.verdict.C.success)
         Pna_attacks.All.attacks)
  in
  Fmt.pr "%d/%d attacks demonstrated (paper: \"We have demonstrated each of \
          the attacks\").@."
    wins
    (List.length Pna_attacks.All.attacks)
